"""Unit conventions used throughout the package.

The 1999 networking literature (and this paper) measures link rates in
Mbit/s (decimal, 1e6 bit/s) and data sizes in KByte/MByte (binary, as was
customary for memory-backed transfer blocks: the paper's "64 KByte MTU" is
65536 bytes).  We keep both conventions explicit to avoid the classic
factor-1.048 confusion when reproducing throughput numbers.

All simulator-internal quantities are SI: seconds, bytes, bit/s.
"""

from __future__ import annotations

#: Binary size units (the paper's "KByte"/"MByte" for MTUs and buffers).
KBYTE = 1024
MBYTE = 1024 * 1024
GBYTE = 1024 * 1024 * 1024

#: Decimal rate units (link speeds).
KBIT = 1e3
MBIT = 1e6
GBIT = 1e9


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count to bits."""
    return nbytes * 8.0


def bits_to_bytes(nbits: float) -> float:
    """Convert a bit count to bytes."""
    return nbits / 8.0


def mbit_per_s(value: float) -> float:
    """A rate given in Mbit/s, as bit/s."""
    return value * MBIT


def gbit_per_s(value: float) -> float:
    """A rate given in Gbit/s, as bit/s."""
    return value * GBIT


def mbyte_per_s(value: float) -> float:
    """A rate given in MByte/s (binary MByte), as bit/s."""
    return value * MBYTE * 8.0


def rate_in_mbit(bits_per_s: float) -> float:
    """A bit/s rate expressed in Mbit/s (decimal)."""
    return bits_per_s / MBIT


def rate_in_mbyte(bits_per_s: float) -> float:
    """A bit/s rate expressed in MByte/s (binary)."""
    return bits_per_s / 8.0 / MBYTE


def pretty_rate(bits_per_s: float) -> str:
    """Human-readable rate, e.g. ``'622.08 Mbit/s'``."""
    if bits_per_s >= GBIT:
        return f"{bits_per_s / GBIT:.2f} Gbit/s"
    if bits_per_s >= MBIT:
        return f"{bits_per_s / MBIT:.2f} Mbit/s"
    if bits_per_s >= KBIT:
        return f"{bits_per_s / KBIT:.2f} kbit/s"
    return f"{bits_per_s:.0f} bit/s"


def pretty_size(nbytes: float) -> str:
    """Human-readable size using binary units, e.g. ``'64.0 KByte'``."""
    if nbytes >= GBYTE:
        return f"{nbytes / GBYTE:.2f} GByte"
    if nbytes >= MBYTE:
        return f"{nbytes / MBYTE:.2f} MByte"
    if nbytes >= KBYTE:
        return f"{nbytes / KBYTE:.1f} KByte"
    return f"{nbytes:.0f} Byte"


def pretty_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``'1.10 s'`` or ``'540 µs'``."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.0f} µs"
    return f"{seconds * 1e9:.0f} ns"
