"""Visualization: the FIRE 2-D GUI, the 3-D VR rendering, the Workbench.

* :mod:`repro.viz.colormap` — grayscale/hot lookup tables;
* :mod:`repro.viz.overlay2d` — Figure 3: anatomy with color-coded
  correlation overlay above a clip level, slice mosaics, ROI time
  courses;
* :mod:`repro.viz.volume` — resampling the 64×64×16 functional data into
  the 256×256×128 anatomical scan;
* :mod:`repro.viz.render3d` — Figure 4: maximum-intensity-projection
  volume rendering with functional highlights, mono and stereo;
* :mod:`repro.viz.workbench` — the Responsive Workbench frame geometry
  (2 projection planes × stereo × 1024×768 true color) and its frame
  rate over the testbed (< 8 frames/s over 622 Mbit/s classical IP).
"""

from repro.viz.colormap import grayscale, hot_colormap
from repro.viz.overlay2d import overlay_slice, slice_mosaic, roi_timecourse
from repro.viz.volume import merge_functional, resample_to
from repro.viz.render3d import render_frame, render_stereo_pair
from repro.viz.workbench import WorkbenchSpec, workbench_fps

__all__ = [
    "grayscale",
    "hot_colormap",
    "overlay_slice",
    "slice_mosaic",
    "roi_timecourse",
    "resample_to",
    "merge_functional",
    "render_frame",
    "render_stereo_pair",
    "WorkbenchSpec",
    "workbench_fps",
]
