"""Color lookup tables (dependency-free)."""

from __future__ import annotations

import numpy as np


def grayscale(values: np.ndarray) -> np.ndarray:
    """Map values in [0, 1] to RGB grays; output shape (..., 3)."""
    v = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
    return np.stack([v, v, v], axis=-1)


def hot_colormap(values: np.ndarray) -> np.ndarray:
    """The classic 'hot' map (black→red→yellow→white) for values in [0,1].

    This is the color coding of the FIRE correlation overlay: low
    correlations deep red, strong activations bright yellow/white.
    """
    v = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
    r = np.clip(3.0 * v, 0.0, 1.0)
    g = np.clip(3.0 * v - 1.0, 0.0, 1.0)
    b = np.clip(3.0 * v - 2.0, 0.0, 1.0)
    return np.stack([r, g, b], axis=-1)


def cold_colormap(values: np.ndarray) -> np.ndarray:
    """Mirror map (black→blue→cyan) for negative correlations."""
    v = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
    b = np.clip(3.0 * v, 0.0, 1.0)
    g = np.clip(3.0 * v - 1.0, 0.0, 1.0)
    r = np.clip(3.0 * v - 2.0, 0.0, 1.0)
    return np.stack([r, g, b], axis=-1)


def normalize(volume: np.ndarray, clip_percentile: float = 99.5) -> np.ndarray:
    """Scale image data into [0, 1] robustly (clips hot outliers)."""
    vol = np.asarray(volume, dtype=float)
    hi = np.percentile(vol, clip_percentile)
    lo = vol.min()
    if hi <= lo:
        return np.zeros_like(vol)
    return np.clip((vol - lo) / (hi - lo), 0.0, 1.0)
