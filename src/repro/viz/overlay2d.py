"""The FIRE 2-D display (paper Figure 3).

"The upper left canvas shows MR-images with a color coded correlation
map overlay" — "for those pixels of each slice, for which the
correlation coefficient is larger than an adjustable clip-level, the
anatomical data are overlayed with the color-coded correlation
coefficient."  The upper right shows ROI signal time courses.
"""

from __future__ import annotations

import numpy as np

from repro.viz.colormap import cold_colormap, grayscale, hot_colormap, normalize


def overlay_slice(
    anatomy_slice: np.ndarray,
    correlation_slice: np.ndarray,
    clip_level: float = 0.5,
    show_negative: bool = False,
) -> np.ndarray:
    """One slice of the Figure-3 canvas: gray anatomy + hot overlay.

    Returns an (H, W, 3) float RGB image in [0, 1].
    """
    if anatomy_slice.shape != correlation_slice.shape:
        raise ValueError("anatomy and correlation slices must align")
    if not 0.0 < clip_level <= 1.0:
        raise ValueError("clip level must be in (0, 1]")
    rgb = grayscale(normalize(anatomy_slice))
    corr = np.asarray(correlation_slice, dtype=float)

    pos = corr >= clip_level
    if np.any(pos):
        # Map [clip, 1] onto the full colormap range.
        scaled = (corr[pos] - clip_level) / max(1.0 - clip_level, 1e-9)
        rgb[pos] = hot_colormap(0.25 + 0.75 * scaled)
    if show_negative:
        neg = corr <= -clip_level
        if np.any(neg):
            scaled = (-corr[neg] - clip_level) / max(1.0 - clip_level, 1e-9)
            rgb[neg] = cold_colormap(0.25 + 0.75 * scaled)
    return rgb


def slice_mosaic(
    anatomy: np.ndarray,
    correlation: np.ndarray,
    clip_level: float = 0.5,
    columns: int = 4,
) -> np.ndarray:
    """All slices of the volume arranged as the GUI's slice mosaic."""
    if anatomy.shape != correlation.shape or anatomy.ndim != 3:
        raise ValueError("expected matching 3-D volumes")
    n_slices, h, w = anatomy.shape
    columns = max(1, min(columns, n_slices))
    rows = -(-n_slices // columns)
    canvas = np.zeros((rows * h, columns * w, 3))
    for k in range(n_slices):
        r, c = divmod(k, columns)
        canvas[r * h : (r + 1) * h, c * w : (c + 1) * w] = overlay_slice(
            anatomy[k], correlation[k], clip_level
        )
    return canvas


def roi_timecourse(
    timeseries: np.ndarray, roi_mask: np.ndarray
) -> np.ndarray:
    """Mean signal time course of a region of interest.

    The Figure-3 panel "the signal time courses of special 'regions of
    interest' can be displayed".
    """
    ts = np.asarray(timeseries, dtype=float)
    mask = np.asarray(roi_mask, dtype=bool)
    if ts.shape[1:] != mask.shape:
        raise ValueError("mask shape must match the spatial shape")
    if not mask.any():
        raise ValueError("empty ROI")
    return ts.reshape(ts.shape[0], -1)[:, mask.ravel()].mean(axis=1)


def percent_signal_change(timecourse: np.ndarray) -> np.ndarray:
    """Time course as % change from its temporal mean (GUI display units)."""
    tc = np.asarray(timecourse, dtype=float)
    base = tc.mean()
    if abs(base) < 1e-12:
        return np.zeros_like(tc)
    return (tc - base) / base * 100.0
