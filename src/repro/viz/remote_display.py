"""Rendering platforms and the planned AVOCADO remote display.

Two Section-4 claims are modelled here:

* the AVS prototype "running on a workstation ... While (on a high-end
  graphical workstation) the update of the functional data takes about
  the same amount of time as the display on the 2-D GUI, this setup is
  too slow for interactive manipulations" — a rendering cost model
  separates the update path from the interactive path;
* the planned extension: "extend AVOCADO such that also remote display
  systems can be used.  Then the data will be displayed on a Workbench
  ... in Jülich" — a pipeline combining Onyx 2 rendering rate with the
  622 Mbit/s transfer gives the achievable remote frame rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.core import Network
from repro.netsim.ip import ClassicalIP, TESTBED_MTU
from repro.netsim.tcp import tcp_steady_throughput
from repro.viz.workbench import WorkbenchSpec

#: Frame rate below which direct manipulation stops feeling interactive.
INTERACTIVE_FPS = 10.0


@dataclass(frozen=True)
class RenderPlatform:
    """A 1999 rendering machine as a fill-rate model.

    ``megavoxels_per_second`` is the volume-rendering throughput per
    pipe; ``pipes`` are parallel graphics pipelines (the Onyx 2's
    InfiniteReality advantage over any workstation).
    """

    name: str
    megavoxels_per_second: float
    pipes: int = 1

    def render_time(self, volume_shape: tuple[int, int, int], views: int = 1) -> float:
        """Seconds to render ``views`` views of a volume."""
        voxels = float(np.prod(volume_shape))
        rate = self.megavoxels_per_second * 1e6 * self.pipes
        return views * voxels / rate

    def fps(self, volume_shape: tuple[int, int, int], views: int = 1) -> float:
        """Achievable local frame rate."""
        return 1.0 / self.render_time(volume_shape, views)

    def interactive(self, volume_shape: tuple[int, int, int], views: int = 1) -> bool:
        """Can a user rotate/zoom/slice in realtime on this platform?"""
        return self.fps(volume_shape, views) >= INTERACTIVE_FPS


#: The AVS prototype host: a high-end graphical workstation.
GRAPHICS_WORKSTATION = RenderPlatform(
    name="high-end graphical workstation", megavoxels_per_second=18.0, pipes=1
)
#: The 12-processor Onyx 2 visualization server at the GMD.
ONYX2_PIPE = RenderPlatform(
    name="SGI Onyx 2 (InfiniteReality)", megavoxels_per_second=150.0, pipes=2
)

#: The merged dataset of Section 4 (256×256×128 anatomy + function).
MERGED_VOLUME = (128, 256, 256)


@dataclass
class RemoteDisplayReport:
    """Achievable frame rate of the AVOCADO remote-display pipeline."""

    render_fps: float
    network_fps: float

    @property
    def achieved_fps(self) -> float:
        """Rendering and shipping pipeline: the slower stage rules."""
        return min(self.render_fps, self.network_fps)

    @property
    def network_bound(self) -> bool:
        return self.network_fps < self.render_fps


def remote_display_fps(
    net: Network,
    render_host: str = "onyx2-gmd",
    display_host: str = "onyx2-juelich",
    platform: RenderPlatform = ONYX2_PIPE,
    volume_shape: tuple[int, int, int] = MERGED_VOLUME,
    spec: WorkbenchSpec | None = None,
    ip: ClassicalIP | None = None,
) -> RemoteDisplayReport:
    """The planned setup: render at the GMD, display in Jülich.

    The Onyx 2 renders the workbench's four views per frame; the
    finished frame set crosses the testbed to the Jülich frame buffer.
    """
    spec = spec or WorkbenchSpec()
    ip = ip or ClassicalIP(TESTBED_MTU)
    render_fps = platform.fps(volume_shape, views=spec.images_per_frame)
    goodput = tcp_steady_throughput(net, render_host, display_host, ip)
    network_fps = goodput / spec.frame_bits
    return RemoteDisplayReport(render_fps=render_fps, network_fps=network_fps)
