"""3-D rendering of the merged head + activation data (paper Figure 4).

"A human head generated from MRI data ... The light areas are regions of
the brain that are activated by moving the right hand."  The production
system rendered on the Onyx 2 with AVOCADO; the AVS prototype ran on a
workstation.  Here: rotation + maximum-intensity projection with the
functional overlay composited in the hot colormap, mono or stereo.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.viz.colormap import grayscale, hot_colormap, normalize


def _rotate(volume: np.ndarray, azimuth_deg: float) -> np.ndarray:
    """Rotate about the z (slice) axis for a view from ``azimuth_deg``."""
    if azimuth_deg % 360.0 == 0.0:
        return volume
    return ndimage.rotate(
        volume, azimuth_deg, axes=(1, 2), reshape=False, order=1, mode="constant"
    )


def mip(volume: np.ndarray, axis: int = 1) -> np.ndarray:
    """Maximum-intensity projection along ``axis``."""
    return np.max(volume, axis=axis)


def render_frame(
    anatomy: np.ndarray,
    functional: np.ndarray | None = None,
    azimuth_deg: float = 0.0,
    axis: int = 1,
    output_shape: tuple[int, int] | None = None,
) -> np.ndarray:
    """One rendered view: gray anatomy MIP with hot functional highlights.

    Returns an (H, W, 3) float RGB image; ``output_shape`` resizes to the
    display geometry (e.g. the Workbench's 768×1024).
    """
    if functional is not None and functional.shape != anatomy.shape:
        raise ValueError("anatomy and functional volumes must be on one grid")
    anat = _rotate(np.asarray(anatomy, dtype=float), azimuth_deg)
    img = grayscale(normalize(mip(anat, axis)))
    if functional is not None:
        func = _rotate(np.asarray(functional, dtype=float), azimuth_deg)
        fmip = mip(func, axis)
        lit = fmip > 0
        if np.any(lit):
            img[lit] = hot_colormap(0.3 + 0.7 * np.clip(fmip[lit], 0, 1))
    if output_shape is not None:
        factors = (
            output_shape[0] / img.shape[0],
            output_shape[1] / img.shape[1],
            1.0,
        )
        img = ndimage.zoom(img, factors, order=1, mode="nearest", grid_mode=True)
        img = img[: output_shape[0], : output_shape[1]]
    return np.clip(img, 0.0, 1.0)


def render_stereo_pair(
    anatomy: np.ndarray,
    functional: np.ndarray | None = None,
    azimuth_deg: float = 0.0,
    eye_separation_deg: float = 4.0,
    **kw,
) -> tuple[np.ndarray, np.ndarray]:
    """Left/right eye views for one Workbench projection plane."""
    half = eye_separation_deg / 2.0
    left = render_frame(anatomy, functional, azimuth_deg - half, **kw)
    right = render_frame(anatomy, functional, azimuth_deg + half, **kw)
    return left, right


def orbit(
    anatomy: np.ndarray,
    functional: np.ndarray | None = None,
    n_frames: int = 8,
    **kw,
) -> list[np.ndarray]:
    """A rotation sequence (the Workbench's interactive rotate)."""
    return [
        render_frame(anatomy, functional, azimuth_deg=360.0 * k / n_frames, **kw)
        for k in range(n_frames)
    ]


def composite_render(
    anatomy: np.ndarray,
    functional: np.ndarray | None = None,
    azimuth_deg: float = 0.0,
    axis: int = 1,
    opacity_scale: float = 0.06,
    functional_opacity: float = 0.35,
) -> np.ndarray:
    """Front-to-back alpha-compositing volume rendering.

    The higher-fidelity mode of the AVOCADO-style renderer: instead of a
    MIP, every sample along the ray contributes with an opacity derived
    from its intensity, so interior structure (ventricles, tissue
    boundaries) shows through — at a correspondingly higher compute cost
    per frame (benchmarked against the MIP in the viz benches).
    """
    anat = _rotate(np.asarray(anatomy, dtype=float), azimuth_deg)
    norm = normalize(anat)
    # Move the ray axis to the front: samples[step, H, W].
    samples = np.moveaxis(norm, axis, 0)
    alpha_s = np.clip(samples * opacity_scale, 0.0, 1.0)
    color_s = grayscale(samples)  # (S, H, W, 3)

    if functional is not None:
        if functional.shape != anatomy.shape:
            raise ValueError("anatomy and functional volumes must be on one grid")
        func = _rotate(np.asarray(functional, dtype=float), azimuth_deg)
        fsamp = np.clip(np.moveaxis(func, axis, 0), 0.0, 1.0)
        lit = fsamp > 0
        color_s[lit] = hot_colormap(0.3 + 0.7 * fsamp[lit])
        alpha_s = np.where(lit, np.maximum(alpha_s, functional_opacity), alpha_s)

    # Front-to-back compositing with early multiplicative transparency.
    h, w = samples.shape[1], samples.shape[2]
    out = np.zeros((h, w, 3))
    transparency = np.ones((h, w, 1))
    for s in range(samples.shape[0]):
        a = alpha_s[s][..., None]
        out += transparency * a * color_s[s]
        transparency *= 1.0 - a
        if transparency.max() < 1e-3:
            break
    return np.clip(out, 0.0, 1.0)
