"""Functional→anatomical volume merging for the 3-D visualization.

Paper: "the functional data are transferred to the 12-processor SGI
Onyx 2 in Sankt Augustin as the calculation proceeds.  Here it is merged
with a high resolution (256x256x128 voxels) image of the subject's
head."
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def resample_to(volume: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    """Trilinear resampling of ``volume`` onto ``shape``."""
    vol = np.asarray(volume, dtype=float)
    if vol.ndim != 3:
        raise ValueError("expected a 3-D volume")
    factors = [t / s for t, s in zip(shape, vol.shape)]
    out = ndimage.zoom(vol, factors, order=1, mode="nearest", grid_mode=True)
    # zoom can be off by one voxel for awkward ratios; pad/crop exactly.
    slices = tuple(slice(0, n) for n in shape)
    if out.shape != tuple(shape):
        padded = np.zeros(shape, dtype=out.dtype)
        src = tuple(slice(0, min(a, b)) for a, b in zip(out.shape, shape))
        padded[src] = out[src]
        return padded
    return out[slices]


def merge_functional(
    anatomy_highres: np.ndarray,
    correlation: np.ndarray,
    clip_level: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Upsample the correlation map into the high-res anatomy's grid.

    Returns ``(anatomy, functional)`` on the same grid, with the
    functional volume zeroed below the clip level — the merged dataset
    AVOCADO renders on the Workbench.
    """
    func = resample_to(np.asarray(correlation, dtype=float), anatomy_highres.shape)
    func = np.where(func >= clip_level, func, 0.0)
    return np.asarray(anatomy_highres, dtype=float), func


def functional_fraction(functional: np.ndarray) -> float:
    """Fraction of voxels carrying functional signal (merge sanity check)."""
    return float(np.count_nonzero(functional)) / functional.size
