"""The Responsive Workbench and its remote-display bandwidth problem.

Paper: "the workbench has two projection planes, each of them displays
stereo images of 1024x768 true color (24 Bit) pixels.  This means that
less than 8 frames/second can be transferred over a 622 Mbit/s ATM
network using classical IP."

The planned AVOCADO extension renders on the Onyx 2 in Sankt Augustin
and ships finished frames across the testbed to the Workbench in Jülich
(frame buffer: the 2-processor Onyx 2 there).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.core import Network
from repro.netsim.ip import ClassicalIP, TESTBED_MTU
from repro.netsim.sdh import STM4
from repro.netsim.tcp import tcp_steady_throughput


@dataclass(frozen=True)
class WorkbenchSpec:
    """Responsive Workbench display geometry."""

    planes: int = 2  #: projection planes
    stereo: bool = True  #: stereo pairs per plane
    width: int = 1024
    height: int = 768
    bytes_per_pixel: int = 3  #: 24-bit true color

    @property
    def images_per_frame(self) -> int:
        """Rendered images per workbench frame."""
        return self.planes * (2 if self.stereo else 1)

    @property
    def frame_bytes(self) -> int:
        """Bytes per complete workbench frame (all planes, both eyes)."""
        return self.images_per_frame * self.width * self.height * self.bytes_per_pixel

    @property
    def frame_bits(self) -> int:
        return self.frame_bytes * 8


def workbench_fps(
    spec: WorkbenchSpec | None = None,
    link_payload_rate: float = STM4.payload_rate,
    ip: ClassicalIP | None = None,
) -> float:
    """Frames/s over a link, accounting for classical-IP-over-ATM overhead.

    With the defaults this is the paper's in-text computation: a 622
    Mbit/s ATM link carries < 8 workbench frames per second.
    """
    spec = spec or WorkbenchSpec()
    ip = ip or ClassicalIP(TESTBED_MTU)
    goodput = link_payload_rate * ip.goodput_fraction()
    return goodput / spec.frame_bits


def workbench_fps_over_path(
    net: Network,
    src: str,
    dst: str,
    spec: WorkbenchSpec | None = None,
    ip: ClassicalIP | None = None,
) -> float:
    """Frames/s over an actual testbed path (Onyx2 GMD → Onyx2 Jülich)."""
    spec = spec or WorkbenchSpec()
    ip = ip or ClassicalIP(TESTBED_MTU)
    goodput = tcp_steady_throughput(net, src, dst, ip)
    return goodput / spec.frame_bits


def required_rate_for_fps(fps: float, spec: WorkbenchSpec | None = None) -> float:
    """Application bit/s needed for a target interactive frame rate."""
    spec = spec or WorkbenchSpec()
    if fps <= 0:
        raise ValueError("fps must be positive")
    return fps * spec.frame_bits
