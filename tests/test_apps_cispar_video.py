"""Tests for the MetaCISPAR coupling interface + FSI demo and the D1
video streaming application (E6)."""

import numpy as np
import pytest

from repro.apps.cispar import (
    ChannelFlow,
    Cocolib,
    CouplingSurface,
    ElasticBeam,
    run_fsi,
)
from repro.apps.cispar.cocolib import interpolate_field
from repro.apps.video import D1Format, D1_RATE, stream_video
from repro.netsim import build_testbed


class TestCocolib:
    def test_surface_validation(self):
        with pytest.raises(ValueError):
            CouplingSurface("bad", np.array([0.0]))
        with pytest.raises(ValueError):
            CouplingSurface("bad", np.array([0.0, 0.5, 0.4]))

    def test_register_and_lookup(self):
        lib = Cocolib()
        lib.register(CouplingSurface("s", np.linspace(0, 1, 5)))
        assert lib.surface("s").n_nodes == 5
        with pytest.raises(KeyError):
            lib.surface("t")

    def test_duplicate_registration_rejected(self):
        lib = Cocolib()
        lib.register(CouplingSurface("s", np.linspace(0, 1, 5)))
        with pytest.raises(ValueError):
            lib.register(CouplingSurface("s", np.linspace(0, 1, 3)))

    def test_interpolation_exact_for_linear_fields(self):
        src = CouplingSurface("a", np.linspace(0, 1, 11))
        dst = CouplingSurface("b", np.linspace(0, 1, 7))
        values = 2.0 * src.coordinates + 1.0
        out = interpolate_field(src, dst, values)
        np.testing.assert_allclose(out, 2.0 * dst.coordinates + 1.0)

    def test_put_get_roundtrip_same_mesh(self):
        lib = Cocolib()
        mesh = np.linspace(0, 1, 9)
        lib.register(CouplingSurface("a", mesh))
        lib.register(CouplingSurface("b", mesh))
        values = np.sin(mesh)
        lib.put("a", "load", values)
        out = lib.get("a", "load", "b")
        np.testing.assert_allclose(out, values)

    def test_missing_field(self):
        lib = Cocolib()
        lib.register(CouplingSurface("a", np.linspace(0, 1, 3)))
        with pytest.raises(KeyError):
            lib.get("a", "nothing", "a")

    def test_field_length_checked(self):
        lib = Cocolib()
        lib.register(CouplingSurface("a", np.linspace(0, 1, 5)))
        with pytest.raises(ValueError):
            lib.put("a", "f", np.zeros(4))

    def test_volume_accounting(self):
        lib = Cocolib()
        lib.register(CouplingSurface("a", np.linspace(0, 1, 8)))
        lib.register(CouplingSurface("b", np.linspace(0, 1, 4)))
        lib.put("a", "f", np.zeros(8))
        lib.get("a", "f", "b")
        assert lib.exchanges == 2
        assert lib.bytes_exchanged == 8 * 8 + 4 * 8


class TestBeamAndFlow:
    def test_beam_clamped_ends(self):
        beam = ElasticBeam(n_nodes=21)
        w = beam.solve(np.full(21, 0.1))
        assert w[0] == pytest.approx(0.0, abs=1e-12)
        assert w[-1] == pytest.approx(0.0, abs=1e-12)

    def test_beam_deflects_toward_load(self):
        beam = ElasticBeam(n_nodes=21)
        w = beam.solve(np.full(21, 0.1))
        assert w[10] > 0

    def test_beam_linear_in_load(self):
        beam = ElasticBeam(n_nodes=21)
        w1 = beam.solve(np.full(21, 0.1))
        w2 = beam.solve(np.full(21, 0.2))
        np.testing.assert_allclose(w2, 2 * w1, rtol=1e-9)

    def test_beam_min_nodes(self):
        with pytest.raises(ValueError):
            ElasticBeam(n_nodes=3)

    def test_flow_suction_at_throat(self):
        flow = ChannelFlow()
        p = flow.solve(np.zeros(flow.n_nodes))
        mid = flow.n_nodes // 2
        assert p[mid] < 0  # accelerated flow = suction
        assert p[0] == pytest.approx(0.0, abs=1e-9)

    def test_flow_height_floor(self):
        flow = ChannelFlow()
        p = flow.solve(np.full(flow.n_nodes, 10.0))  # absurd deflection
        assert np.isfinite(p).all()

    def test_bump_bounds(self):
        with pytest.raises(ValueError):
            ChannelFlow(bump=0.9)


class TestFsi:
    def test_converges(self):
        rep = run_fsi()
        assert rep.converged
        assert rep.iterations < 60

    def test_residuals_decrease(self):
        rep = run_fsi()
        hist = rep.residual_history
        assert hist[-1] < hist[0]

    def test_two_way_coupling_moves_panel(self):
        rep = run_fsi()
        assert rep.max_displacement > 1e-3

    def test_stiffer_panel_deflects_less(self):
        soft = run_fsi(beam=ElasticBeam(stiffness=0.02))
        stiff = run_fsi(beam=ElasticBeam(stiffness=0.2))
        assert stiff.max_displacement < soft.max_displacement

    def test_exchange_volume_tracked(self):
        rep = run_fsi()
        assert rep.bytes_exchanged > 0


class TestVideo:
    def test_d1_rate_is_270_mbit(self):
        assert D1_RATE == 270e6
        fmt = D1Format()
        assert fmt.frame_bytes == pytest.approx(270e6 / 25 / 8, abs=1)

    def test_bytes_for_duration(self):
        fmt = D1Format()
        assert fmt.bytes_for(2.0) == int(270e6 * 2 / 8)
        with pytest.raises(ValueError):
            fmt.bytes_for(-1.0)

    def test_d1_exceeds_bwin_155(self):
        """The paper's motivation: 270 Mbit/s cannot fit the 155 Mbit/s
        B-WiN access capacity."""
        assert D1_RATE > 155.52e6

    def test_stream_over_622_is_broadcast_quality(self):
        tb = build_testbed()
        rep = stream_video(tb.net, "onyx2-gmd", "onyx2-juelich", duration=1.0)
        assert rep.frames_lost == 0
        assert rep.jitter < 1e-3
        assert rep.delivered_rate == pytest.approx(D1_RATE, rel=0.02)
        assert rep.broadcast_quality

    def test_stream_over_155_attachment_fails(self):
        """A 155 Mbit/s attached endpoint cannot absorb D1."""
        tb = build_testbed()
        rep = stream_video(tb.net, "onyx2-gmd", "frontend", duration=1.0)
        assert rep.frames_lost > 0
        assert rep.delivered_rate < 160e6
        assert not rep.broadcast_quality

    def test_loss_fraction(self):
        tb = build_testbed()
        rep = stream_video(tb.net, "onyx2-gmd", "frontend", duration=0.8)
        assert 0.0 < rep.loss_fraction < 1.0
