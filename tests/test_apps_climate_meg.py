"""Tests for the climate coupling and the MEG/pmusic application (E6)."""

import numpy as np
import pytest

from repro.apps.climate import (
    AtmosphereModel,
    FluxCoupler,
    OceanModel,
    regrid_bilinear,
    run_coupled_climate,
)
from repro.apps.climate.coupler import regrid_conservative
from repro.apps.meg import (
    HeterogeneousCostModel,
    SensorArray,
    dipole_field,
    gain_matrix,
    music_localize,
    run_pmusic,
)
from repro.apps.meg.forward import synthetic_recording
from repro.apps.meg.music import default_grid, signal_subspace, subspace_correlation
from repro.util.units import MBYTE


class TestOcean:
    def test_initial_sst_warm_equator(self):
        ocean = OceanModel(shape=(20, 40))
        equator = ocean.sst[10].mean()
        pole = ocean.sst[0].mean()
        assert equator > pole + 10

    def test_flux_warms_surface(self):
        ocean = OceanModel(shape=(20, 40))
        before = ocean.mean_sst
        ocean.step(np.full((20, 40), 200.0), dt=86400 * 5)
        assert ocean.mean_sst > before

    def test_ice_forms_when_cold(self):
        ocean = OceanModel(shape=(20, 40))
        ocean.step(np.full((20, 40), -800.0), dt=86400 * 30)
        assert ocean.ice.any()
        assert ocean.sst.min() >= -3.8  # capped near freezing

    def test_flux_shape_checked(self):
        ocean = OceanModel(shape=(20, 40))
        with pytest.raises(ValueError):
            ocean.step(np.zeros((10, 10)))


class TestAtmosphere:
    def test_fluxes_respond_to_sst_contrast(self):
        atm = AtmosphereModel(shape=(10, 20))
        warm = atm.fluxes(atm.temperature + 5.0)
        cold = atm.fluxes(atm.temperature - 5.0)
        assert warm.sensible.mean() > cold.sensible.mean()

    def test_net_flux_definition(self):
        atm = AtmosphereModel(shape=(10, 20))
        fx = atm.fluxes(atm.temperature)
        np.testing.assert_allclose(fx.net, fx.radiative - fx.sensible)

    def test_step_moves_temperature_sensibly(self):
        atm = AtmosphereModel(shape=(10, 20))
        t0 = atm.mean_temperature
        for _ in range(10):
            atm.step(atm.temperature + 2.0)
        assert np.isfinite(atm.temperature).all()
        assert abs(atm.mean_temperature - t0) < 30

    def test_grid_mismatch_rejected(self):
        atm = AtmosphereModel(shape=(10, 20))
        with pytest.raises(ValueError):
            atm.fluxes(np.zeros((5, 5)))


class TestCoupler:
    def test_bilinear_constant_field(self):
        out = regrid_bilinear(np.full((10, 20), 3.0), (25, 50))
        np.testing.assert_allclose(out, 3.0, atol=1e-9)
        assert out.shape == (25, 50)

    def test_conservative_preserves_mean(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(20, 40))
        out = regrid_conservative(field, (10, 20))
        assert out.mean() == pytest.approx(field.mean(), abs=1e-12)

    def test_conservative_falls_back_for_noninteger(self):
        out = regrid_conservative(np.ones((9, 9)), (4, 4))
        assert out.shape == (4, 4)

    def test_routing_and_accounting(self):
        coupler = FluxCoupler((20, 40), (10, 20))
        sst = np.full((20, 40), 15.0)
        out = coupler.ocean_to_atmosphere(sst)
        assert out.shape == (10, 20)
        flux = np.zeros((10, 20))
        back = coupler.atmosphere_to_ocean(flux)
        assert back.shape == (20, 40)
        assert coupler.exchanges == 2
        assert coupler.bytes_exchanged > 0

    def test_wrong_grid_rejected(self):
        coupler = FluxCoupler((20, 40), (10, 20))
        with pytest.raises(ValueError):
            coupler.ocean_to_atmosphere(np.zeros((10, 20)))


class TestCoupledClimate:
    def test_run_is_stable_and_bounded(self):
        rep = run_coupled_climate(
            ocean_shape=(20, 40), atmosphere_shape=(10, 20), steps=6
        )
        assert rep.sst_drift < 5.0  # no runaway
        assert -10 < rep.mean_airt_end < 40

    def test_burst_size_production_grids_near_1mbyte(self):
        """E6: 'up to 1 MByte in short bursts' — at the production grid
        (360×180 ocean) SST+flux per step is ~1 MByte."""
        ocean = (180, 360)
        sst_bytes = 180 * 360 * 8
        flux_bytes = 180 * 360 * 8  # flux regridded onto the ocean grid
        assert 0.9 * MBYTE < sst_bytes + flux_bytes < 1.2 * MBYTE

    def test_coupler_bookkeeping_reported(self):
        rep = run_coupled_climate(
            ocean_shape=(20, 40), atmosphere_shape=(10, 20), steps=4
        )
        assert rep.total_bytes > 0
        assert rep.burst_bytes > 0
        assert rep.elapsed_virtual > 0


class TestMegForward:
    def test_radial_dipole_silent(self):
        """A radial dipole in a sphere produces no external field (Sarvas)."""
        arr = SensorArray(n_sensors=32)
        r0 = np.array([0.0, 0.0, 0.05])
        radial_q = np.array([0.0, 0.0, 1e-8])  # along r0
        tangential_q = np.array([1e-8, 0.0, 0.0])
        silent = np.abs(arr.measure(r0, radial_q)).max()
        loud = np.abs(arr.measure(r0, tangential_q)).max()
        assert silent < 1e-3 * loud

    def test_field_decays_with_depth(self):
        arr = SensorArray(n_sensors=32)
        q = np.array([1e-8, 0.0, 0.0])
        shallow = np.abs(arr.measure(np.array([0.0, 0.03, 0.07]), q)).max()
        deep = np.abs(arr.measure(np.array([0.0, 0.01, 0.02]), q)).max()
        assert shallow > deep

    def test_linearity_in_moment(self):
        arr = SensorArray(n_sensors=16)
        r0 = np.array([0.02, 0.0, 0.05])
        b1 = arr.measure(r0, np.array([1e-8, 0, 0]))
        b2 = arr.measure(r0, np.array([2e-8, 0, 0]))
        np.testing.assert_allclose(b2, 2 * b1, rtol=1e-9)

    def test_gain_matrix_columns(self):
        arr = SensorArray(n_sensors=16)
        g = gain_matrix(arr, np.array([0.02, 0.01, 0.05]))
        assert g.shape == (16, 3)
        np.testing.assert_allclose(
            g[:, 1], arr.measure(np.array([0.02, 0.01, 0.05]), np.eye(3)[1])
        )

    def test_dipole_at_origin_rejected(self):
        arr = SensorArray(n_sensors=8)
        with pytest.raises(ValueError):
            dipole_field(np.zeros(3), np.ones(3), arr.positions() * 0)

    def test_sensors_on_helmet(self):
        arr = SensorArray(n_sensors=64, radius=0.12)
        pos = arr.positions()
        np.testing.assert_allclose(np.linalg.norm(pos, axis=1), 0.12)
        assert np.all(pos[:, 2] > 0)  # upper hemisphere


class TestMusic:
    @pytest.fixture(scope="class")
    def recording(self):
        arr = SensorArray(n_sensors=48)
        t = np.linspace(0, 1, 150)
        d1 = (
            np.array([0.03, 0.02, 0.06]),
            np.array([0.0, 8e-9, 0.0]),
            np.sin(2 * np.pi * 10 * t),
        )
        d2 = (
            np.array([-0.04, 0.0, 0.05]),
            np.array([6e-9, 0.0, 0.0]),
            np.sin(2 * np.pi * 17 * t),
        )
        data = synthetic_recording(arr, [d1, d2], n_samples=150)
        return arr, data, (d1[0], d2[0])

    def test_subspace_dimensions(self, recording):
        arr, data, _ = recording
        sub = signal_subspace(data, rank=2)
        assert sub.shape == (48, 2)
        np.testing.assert_allclose(sub.T @ sub, np.eye(2), atol=1e-10)

    def test_subspace_correlation_bounds(self, recording):
        arr, data, truths = recording
        sub = signal_subspace(data, rank=2)
        c = subspace_correlation(gain_matrix(arr, truths[0]), sub)
        assert 0.0 <= c <= 1.0
        assert c > 0.9  # true source location correlates strongly

    def test_localizes_both_dipoles(self, recording):
        arr, data, truths = recording
        res = music_localize(arr, data, rank=2, grid=default_grid(spacing=0.02))
        peaks = res.peaks(2, min_separation=0.04)
        for truth in truths:
            err = np.linalg.norm(peaks - truth, axis=1).min()
            assert err < 0.025  # within ~grid spacing

    def test_spectrum_peaks_at_sources(self, recording):
        arr, data, truths = recording
        grid = default_grid(spacing=0.02)
        res = music_localize(arr, data, rank=2, grid=grid)
        near = np.linalg.norm(grid - truths[0], axis=1) < 0.02
        far = np.linalg.norm(grid - truths[0], axis=1) > 0.05
        far &= np.linalg.norm(grid - truths[1], axis=1) > 0.05
        assert res.spectrum[near].max() > res.spectrum[far].mean() + 0.05


class TestPmusic:
    def test_distributed_matches_localization(self):
        arr = SensorArray(n_sensors=32)
        t = np.linspace(0, 1, 100)
        truth = np.array([0.03, 0.02, 0.06])
        data = synthetic_recording(
            arr,
            [(truth, np.array([0.0, 8e-9, 0.0]), np.sin(2 * np.pi * 9 * t))],
            n_samples=100,
        )
        rep = run_pmusic(data, arr, rank_signal=1, n_sources=1, ranks=3)
        err = np.linalg.norm(rep.estimated_positions[0] - truth)
        assert err < 0.025

    def test_low_volume_communication(self):
        """E6: the MEG coupling is low volume (well under a MByte)."""
        arr = SensorArray(n_sensors=32)
        t = np.linspace(0, 1, 100)
        data = synthetic_recording(
            arr,
            [(np.array([0.0, 0.02, 0.06]), np.array([8e-9, 0, 0]),
              np.sin(2 * np.pi * 9 * t))],
            n_samples=100,
        )
        rep = run_pmusic(data, arr, rank_signal=1, n_sources=1, ranks=3)
        assert rep.message_bytes < MBYTE / 4

    def test_heterogeneous_superlinear(self):
        """E6: MPP + vector split beats both parts — the paper's
        'superlinear speedup'."""
        model = HeterogeneousCostModel()
        s_mpp, s_vec, s_het = model.superlinear()
        assert s_het > s_mpp + s_vec

    def test_latency_sensitivity(self):
        """E6: the communication is latency-sensitive — WAN latency shows
        up 1:1 in the runtime because volume is negligible."""
        model = HeterogeneousCostModel()
        from repro.machines import CRAY_T3E_600, CRAY_T90

        fast = model.time_heterogeneous(
            CRAY_T3E_600, 64, CRAY_T90, wan_latency=1e-3
        )
        slow = model.time_heterogeneous(
            CRAY_T3E_600, 64, CRAY_T90, wan_latency=50e-3
        )
        assert slow - fast == pytest.approx(49e-3 * 6, rel=0.01)
