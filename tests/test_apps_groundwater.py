"""Tests for the TRACE/PARTRACE groundwater coupling (part of E6)."""

import numpy as np
import pytest

from repro.apps.groundwater import (
    ParticleTracker,
    TraceSolver,
    field_bytes,
    required_bandwidth,
    run_coupled,
)
from repro.apps.groundwater.partrace import trilinear
from repro.apps.groundwater.trace_flow import layered_conductivity
from repro.util.units import MBYTE

SHAPE = (6, 10, 20)


class TestTrace:
    def test_head_between_boundaries(self):
        solver = TraceSolver(shape=SHAPE)
        head = solver.solve()
        assert head.max() <= solver.head_in + 1e-6
        assert head.min() >= solver.head_out - 1e-6

    def test_head_monotone_along_flow_homogeneous(self):
        solver = TraceSolver(shape=SHAPE)
        head = solver.solve()
        profile = head.mean(axis=(0, 1))
        assert np.all(np.diff(profile) < 0)

    def test_linear_profile_homogeneous(self):
        solver = TraceSolver(shape=SHAPE)
        head = solver.solve(tolerance=1e-10)
        profile = head.mean(axis=(0, 1))
        # Interior gradient is constant for constant K.
        grads = np.diff(profile)[2:-2]
        assert np.std(grads) < 0.02 * abs(np.mean(grads))

    def test_velocity_points_downstream(self):
        solver = TraceSolver(shape=SHAPE)
        vz, vy, vx = solver.velocity(solver.solve())
        assert vx.mean() > 0
        assert abs(vy.mean()) < 0.1 * vx.mean()

    def test_source_raises_local_head(self):
        solver = TraceSolver(shape=SHAPE)
        base = solver.solve(tolerance=1e-10)
        src = np.zeros(SHAPE)
        src[3, 5, 10] = 1e-3
        pumped = solver.solve(src, tolerance=1e-10)
        assert pumped[3, 5, 10] > base[3, 5, 10]

    def test_heterogeneous_field_accepted(self):
        k = layered_conductivity(SHAPE)
        solver = TraceSolver(shape=SHAPE, conductivity=k)
        head = solver.solve()
        assert np.isfinite(head).all()

    def test_invalid_conductivity(self):
        with pytest.raises(ValueError):
            TraceSolver(shape=SHAPE, conductivity=-1.0)
        with pytest.raises(ValueError):
            TraceSolver(shape=SHAPE, conductivity=np.ones((2, 2, 2)))


class TestPartrace:
    def test_trilinear_exact_on_nodes(self):
        field = np.arange(27, dtype=float).reshape(3, 3, 3)
        val = trilinear(field, np.array([[1.0, 2.0, 0.0]]))
        # positions are clamped a hair inside the grid, hence approx
        assert val[0] == pytest.approx(field[1, 2, 0], abs=1e-4)

    def test_trilinear_interpolates_midpoint(self):
        field = np.zeros((2, 2, 2))
        field[1] = 1.0
        val = trilinear(field, np.array([[0.5, 0.5, 0.5]]))
        assert val[0] == pytest.approx(0.5)

    def test_uniform_flow_advects_cloud(self):
        tracker = ParticleTracker(n_particles=100, dispersion=0.0)
        tracker.seed_particles(SHAPE)
        v = (np.zeros(SHAPE), np.zeros(SHAPE), np.full(SHAPE, 0.5))
        x0 = tracker.positions[:, 2].mean()
        tracker.step(v, dt=2.0)
        assert tracker.positions[tracker.active][:, 2].mean() == pytest.approx(
            x0 + 1.0, abs=0.05
        )

    def test_breakthrough_detection(self):
        tracker = ParticleTracker(n_particles=50, dispersion=0.0)
        tracker.seed_particles(SHAPE)
        v = (np.zeros(SHAPE), np.zeros(SHAPE), np.full(SHAPE, 2.0))
        for _ in range(15):
            tracker.step(v, dt=1.0)
        assert tracker.breakthrough_fraction == 1.0
        assert len(tracker.breakthrough_times) == 50

    def test_requires_seeding(self):
        tracker = ParticleTracker()
        with pytest.raises(RuntimeError):
            tracker.step((np.zeros(SHAPE),) * 3, dt=1.0)

    def test_concentration_histogram_counts_actives(self):
        tracker = ParticleTracker(n_particles=30, dispersion=0.0)
        tracker.seed_particles(SHAPE)
        conc = tracker.concentration(SHAPE)
        assert conc.sum() == 30

    def test_dispersion_spreads_cloud(self):
        t1 = ParticleTracker(n_particles=300, dispersion=0.0)
        t2 = ParticleTracker(n_particles=300, dispersion=0.5)
        still = (np.zeros(SHAPE),) * 3
        for t in (t1, t2):
            t.seed_particles(SHAPE)
            for _ in range(5):
                t.step(still, dt=1.0)
        assert t2.positions[:, 1].std() > t1.positions[:, 1].std()


class TestCoupling:
    def test_field_bytes(self):
        assert field_bytes((64, 128, 128)) == 64 * 128 * 128 * 3 * 8

    def test_paper_bandwidth_band(self):
        """E6: production grids need tens of MByte/s, within the paper's
        'up to 30 MByte/s'."""
        bw = required_bandwidth((64, 128, 128), dt_wall=1.0)
        assert 20 * MBYTE < bw <= 30 * MBYTE

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            required_bandwidth(SHAPE, dt_wall=0.0)

    def test_coupled_run_end_to_end(self):
        report = run_coupled(
            shape=SHAPE, steps=3, n_particles=100, dt=3.0, velocity_scale=3e4
        )
        assert report.steps == 3
        assert report.bytes_per_step == field_bytes(SHAPE)
        assert report.mean_head_drop > 0
        assert report.elapsed_virtual > 0
        # particles actually moved and some broke through at this scale
        assert report.breakthrough_fraction > 0

    def test_coupled_deterministic(self):
        r1 = run_coupled(shape=SHAPE, steps=2, n_particles=50, dt=1.0)
        r2 = run_coupled(shape=SHAPE, steps=2, n_particles=50, dt=1.0)
        assert r1.breakthrough_fraction == r2.breakthrough_fraction
        assert r1.mean_head_drop == r2.mean_head_drop
