"""Tests for the Section-5 extension projects: distributed traffic
simulation, virtual TV production, multiscale molecular dynamics, and
lithospheric fluids."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.lithosphere import HydrothermalCell, run_hydrothermal
from repro.apps.moldyn import ElasticContinuum, LennardJonesChain, run_multiscale
from repro.apps.moldyn.lj import R_EQ, lj_force
from repro.apps.traffic import (
    NagelSchreckenberg,
    fundamental_diagram,
    run_distributed_traffic,
)
from repro.apps.tvproduction import (
    chroma_key,
    composite_program,
    plan_production,
    render_virtual_set,
    run_production,
)
from repro.apps.tvproduction.compositing import STUDIO_GREEN, synthetic_camera_frame
from repro.netsim.qos import AdmissionError


class TestNagelSchreckenberg:
    def test_car_count_conserved(self):
        sim = NagelSchreckenberg(n_cells=200, density=0.3)
        n0 = sim.n_cars
        sim.run(100)
        assert sim.n_cars == n0

    def test_velocities_bounded(self):
        sim = NagelSchreckenberg(n_cells=200, density=0.3, v_max=5)
        sim.run(50)
        vels = sim.road[sim.road != -1]
        assert vels.min() >= 0 and vels.max() <= 5

    def test_free_flow_at_low_density(self):
        sim = NagelSchreckenberg(n_cells=500, density=0.05, p_dawdle=0.0)
        sim.run(100)
        # every car reaches v_max in free flow
        assert sim.road[sim.road != -1].min() == 5

    def test_jammed_at_high_density(self):
        sim = NagelSchreckenberg(n_cells=500, density=0.85)
        sim.run(100)
        sim._moved = sim._car_steps = 0
        sim.run(50)
        assert sim.mean_velocity < 0.5

    def test_fundamental_diagram_shape(self):
        """Flow rises on the free branch and falls on the congested one."""
        d, f = fundamental_diagram(
            np.array([0.05, 0.15, 0.5, 0.8]), steps=150, warmup=80
        )
        assert f[1] > f[0] * 1.5 or f[1] > 0.3  # rising into the peak
        assert f[3] < f[1]  # falling congested branch
        assert np.argmax(f) in (0, 1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            NagelSchreckenberg(density=0.0)
        with pytest.raises(ValueError):
            NagelSchreckenberg(v_max=0)
        with pytest.raises(ValueError):
            NagelSchreckenberg(p_dawdle=1.0)

    @given(density=st.floats(0.05, 0.9), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_no_collisions_property(self, density, seed):
        """Property: no two cars ever occupy one cell (implied by the
        array representation) and every gap rule is respected."""
        sim = NagelSchreckenberg(
            n_cells=120, density=density, seed=seed
        )
        n0 = sim.n_cars
        for _ in range(30):
            sim.step()
            assert sim.n_cars == n0


class TestDistributedTraffic:
    def test_cars_conserved_across_ranks(self):
        rep = run_distributed_traffic(
            n_cells=200, density=0.2, steps=20, ranks=4, wallclock_timeout=60
        )
        assert rep.cars_conserved

    def test_deterministic_equivalence_to_serial(self):
        """With p_dawdle=0 the distributed run is cell-exact vs serial."""
        rep = run_distributed_traffic(
            n_cells=120, density=0.25, steps=15, ranks=3,
            p_dawdle=0.0, seed=5, wallclock_timeout=60,
        )
        serial = NagelSchreckenberg(
            n_cells=120, density=0.25, p_dawdle=0.0, seed=5
        )
        serial.run(15)
        np.testing.assert_array_equal(rep.final_road, serial.road)

    def test_visualization_stream_received(self):
        rep = run_distributed_traffic(
            n_cells=200, density=0.2, steps=20, ranks=3,
            viz_every=5, wallclock_timeout=60,
        )
        assert rep.viz_frames == 4
        assert rep.viz_bytes_per_frame == 200  # bool per cell

    def test_flow_plausible(self):
        rep = run_distributed_traffic(
            n_cells=300, density=0.15, steps=40, ranks=3, wallclock_timeout=60
        )
        assert 0.1 < rep.flow < 1.0


class TestTvProduction:
    def test_chroma_key_replaces_green(self):
        fg = synthetic_camera_frame((24, 32))
        bg = render_virtual_set((24, 32))
        out = chroma_key(fg, bg)
        green = np.linalg.norm(fg - STUDIO_GREEN, axis=-1) < 0.25
        np.testing.assert_allclose(out[green], bg[green])
        np.testing.assert_allclose(out[~green], fg[~green])

    def test_chroma_key_shape_checked(self):
        with pytest.raises(ValueError):
            chroma_key(np.zeros((4, 4, 3)), np.zeros((4, 5, 3)))

    def test_virtual_set_animates(self):
        a = render_virtual_set((24, 32), t=0.0)
        b = render_virtual_set((24, 32), t=0.5)
        assert np.abs(a - b).max() > 0.05

    def test_composite_layouts(self):
        frames = [synthetic_camera_frame((24, 32), seed=i) for i in range(2)]
        bg = render_virtual_set((24, 32))
        row = composite_program(frames, bg, layout="row")
        stack = composite_program(frames, bg, layout="stack")
        assert row.shape == (24, 64, 3)
        assert stack.shape == (48, 32, 3)
        with pytest.raises(ValueError):
            composite_program(frames, bg, layout="diagonal")
        with pytest.raises(ValueError):
            composite_program([], bg)

    def test_plan_reserves_all_vcs(self):
        plan = plan_production()
        assert plan.n_cameras == 2
        assert plan.total_reserved == pytest.approx(3 * 270e6)

    def test_third_camera_rejected(self):
        with pytest.raises(AdmissionError):
            plan_production(
                camera_sites=("uni-cologne", "dlr", "media-arts-cologne")
            )

    def test_production_run(self):
        rep = run_production(n_cameras=2, n_frames=3, frame_shape=(24, 32))
        assert rep.frames == 3
        assert rep.program_shape == (24, 64, 3)
        assert 0.5 < rep.keyed_fraction < 1.0  # mostly green screen
        assert rep.elapsed_virtual > 0


class TestMolDyn:
    def test_lattice_is_equilibrium(self):
        chain = LennardJonesChain(n_atoms=32)
        # Perfect lattice: near-zero forces on interior atoms.
        assert np.abs(chain._f[2:-2]).max() < 0.5

    def test_energy_conserved_free_dynamics(self):
        chain = LennardJonesChain(n_atoms=32, temperature=0.02, dt=0.002)
        e0 = chain.total_energy
        chain.run(500)
        assert chain.total_energy == pytest.approx(e0, abs=0.05 * max(abs(e0), 1))

    def test_pulse_propagates(self):
        chain = LennardJonesChain(n_atoms=64)
        chain.x[:4] += 0.1
        chain.run(300)
        disp = chain.displacement_field()
        # The pulse has moved beyond the first quarter of the chain.
        assert np.abs(disp[16:]).max() > 1e-3

    def test_lj_force_signs(self):
        assert lj_force(np.array([0.9 * R_EQ]))[0] > 0  # repulsive
        assert lj_force(np.array([1.2 * R_EQ]))[0] < 0  # attractive
        assert lj_force(np.array([R_EQ]))[0] == pytest.approx(0.0, abs=1e-10)

    def test_continuum_wave_and_clamp(self):
        bar = ElasticContinuum(n_nodes=50)
        bar.run(200, interface_force=0.5)
        assert bar.u[0] != 0.0
        assert bar.u[-1] == 0.0  # clamped end

    def test_continuum_validation(self):
        with pytest.raises(ValueError):
            ElasticContinuum(n_nodes=2)

    def test_multiscale_coupling(self):
        rep = run_multiscale(coupling_steps=15, md_substeps=8)
        assert rep.exchanges == 30
        assert rep.bytes_per_exchange == 8  # low volume, like the paper says
        assert rep.max_continuum_displacement > 0  # wave crossed the interface
        assert rep.energy_drift < 1.0  # no blowup
        assert rep.elapsed_virtual > 0


class TestLithosphere:
    def test_subcritical_stays_conductive(self):
        """Below the critical Rayleigh number (4π² ≈ 39.5) perturbations
        decay: pure conduction, Nu = 1."""
        rep = run_hydrothermal(rayleigh=15.0, steps=300)
        assert rep.nusselt == pytest.approx(1.0, abs=0.1)
        assert not rep.convecting

    def test_supercritical_convects(self):
        rep = run_hydrothermal(rayleigh=300.0, steps=400)
        assert rep.convecting
        assert rep.nusselt > 1.5
        assert rep.max_velocity > 5.0

    def test_nusselt_grows_with_rayleigh(self):
        weak = run_hydrothermal(rayleigh=200.0, steps=400)
        strong = run_hydrothermal(rayleigh=500.0, steps=400)
        assert strong.nusselt > weak.nusselt

    def test_boundary_conditions_held(self):
        cell = HydrothermalCell(nz=16, nx=32, rayleigh=300.0)
        cell.run(100)
        np.testing.assert_allclose(cell.T[0], 1.0)
        np.testing.assert_allclose(cell.T[-1], 0.0)
        np.testing.assert_allclose(cell.psi[:, 0], 0.0)
        np.testing.assert_allclose(cell.psi[0, :], 0.0)

    def test_temperature_stays_bounded(self):
        cell = HydrothermalCell(nz=16, nx=32, rayleigh=300.0)
        cell.run(200)
        assert cell.T.min() > -0.2 and cell.T.max() < 1.2

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            HydrothermalCell(nz=4, nx=4)
