"""Burst invalidation: faults and DRR contention mid-burst.

The batched hot path pre-schedules whole bursts — CBR sources emit one
kernel event per frame, and saturated links claim bounded same-flow
batches with every member's arrival already in the heap.  A fault or a
competing flow arriving mid-burst must unwind the unserved tail and
replay it through the ordinary per-packet machinery.  These tests pin
the contract: every delivery tuple (endpoint, kind, seq, timestamp) is
bit-identical whether bursts were taken, forcibly refused, bounded to
one packet, or the whole simulation ran on the classic generator/
process slow path.
"""

import pytest

from repro.netsim import BulkTransfer, CbrFlow, ClassicalIP, build_testbed
from repro.netsim import core as netsim_core
from repro.netsim.faults import FaultInjector
from repro.netsim.ip import TESTBED_MTU
from repro.netsim.sched import DrrScheduler
from repro.sim import Environment

VARIANTS = ("fast", "slow", "nobatch", "batch1")


def _apply_variant(variant, monkeypatch):
    """Return the Environment fast_path flag for ``variant`` after
    installing its kernel restrictions."""
    if variant == "slow":
        return False
    if variant == "nobatch":
        # Refuse every batch claim: the lazy transmitter must fall back
        # to per-packet service with identical timing.
        monkeypatch.setattr(DrrScheduler, "single_backlog", lambda self: False)
    elif variant == "batch1":
        # A one-packet batch bound degenerates to per-packet service
        # through the batching code path itself.
        monkeypatch.setattr(netsim_core, "LINK_BATCH", 1)
    return True


def _record_deliveries(net, hosts):
    deliveries: list[tuple] = []
    for hname in hosts:
        host = net.host(hname)
        for flow, sink in list(host._sinks.items()):
            def wrapped(packet, t, _sink=sink, _h=hname):
                deliveries.append((_h, packet.kind, packet.seq, t))
                _sink(packet, t)

            host._sinks[flow] = wrapped
    return deliveries


def _run_fault_mid_burst(variant, monkeypatch):
    """A CBR stream over the WAN with the link failing mid-stream."""
    fast = _apply_variant(variant, monkeypatch)
    tb = build_testbed(env=Environment(fast_path=fast))
    cbr = CbrFlow(
        tb.net,
        "sp2",
        "t3e-600",
        frame_bytes=128 * 1024,
        interval=2e-3,
        n_frames=30,
        ip=ClassicalIP(TESTBED_MTU),
        name="video",
        drain_timeout=0.5,
    )
    # Down for 8 ms starting a third of the way in: several pre-scheduled
    # frame bursts and any claimed link batch get chopped mid-flight.
    FaultInjector(tb.net).link_down(tb.wan_link, at=0.02, duration=8e-3)
    deliveries = _record_deliveries(tb.net, ("sp2", "t3e-600"))
    tb.net.env.run(until=cbr.done)
    return {
        "deliveries": deliveries,
        "elapsed": tb.net.env.now,
        "frames_received": cbr.frames_received,
        "frames_lost": cbr.frames_lost,
    }


def _run_contention_mid_burst(variant, monkeypatch):
    """A CBR stream sharing the WAN with a bulk transfer: cross-flow
    arrivals invalidate claimed same-flow batches continuously."""
    fast = _apply_variant(variant, monkeypatch)
    tb = build_testbed(env=Environment(fast_path=fast))
    ip = ClassicalIP(TESTBED_MTU)
    cbr = CbrFlow(
        tb.net,
        "sp2",
        "t3e-600",
        frame_bytes=128 * 1024,
        interval=2e-3,
        n_frames=25,
        ip=ip,
        name="video",
        drain_timeout=0.5,
    )
    bulk = BulkTransfer(
        tb.net, "sp2", "t3e-600", 2 * 1024 * 1024, ip=ip, name="bulk"
    )
    deliveries = _record_deliveries(tb.net, ("sp2", "t3e-600"))
    env = tb.net.env
    env.run(until=env.all_of([cbr.done, bulk.done]))
    return {
        "deliveries": deliveries,
        "elapsed": env.now,
        "frames_received": cbr.frames_received,
        "goodput": bulk.throughput,
        "retransmits": bulk.retransmits,
    }


@pytest.fixture(scope="module")
def fault_runs(request):
    mp = pytest.MonkeyPatch()
    runs = {}
    for variant in VARIANTS:
        with mp.context() as m:
            runs[variant] = _run_fault_mid_burst(variant, m)
    return runs


@pytest.fixture(scope="module")
def contention_runs(request):
    mp = pytest.MonkeyPatch()
    runs = {}
    for variant in VARIANTS:
        with mp.context() as m:
            runs[variant] = _run_contention_mid_burst(variant, m)
    return runs


@pytest.mark.parametrize("variant", [v for v in VARIANTS if v != "fast"])
def test_fault_mid_burst_is_bit_identical(fault_runs, variant):
    ref = fault_runs["fast"]
    assert fault_runs[variant] == ref, (
        f"{variant} diverged from the batched fast path under a mid-burst fault"
    )


@pytest.mark.parametrize("variant", [v for v in VARIANTS if v != "fast"])
def test_contention_mid_burst_is_bit_identical(contention_runs, variant):
    ref = contention_runs["fast"]
    assert contention_runs[variant] == ref, (
        f"{variant} diverged from the batched fast path under DRR contention"
    )


def test_fault_scenario_actually_loses_frames(fault_runs):
    """The fault window must actually bite (otherwise the identity
    assertions above prove nothing about invalidation)."""
    ref = fault_runs["fast"]
    assert ref["frames_lost"] > 0
    assert ref["frames_received"] > 0


def test_contention_scenario_actually_contends(contention_runs):
    ref = contention_runs["fast"]
    assert ref["frames_received"] > 0
    assert ref["goodput"] > 0
