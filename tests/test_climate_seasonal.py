"""Tests for the seasonal-forcing extension of the climate component."""

import numpy as np
import pytest

from repro.apps.climate import AtmosphereModel
from repro.apps.climate.atmosphere import YEAR


class TestSeasonalInsolation:
    def test_disabled_by_default(self):
        atm = AtmosphereModel(shape=(20, 40))
        i0 = atm.insolation_now()
        atm.time = YEAR / 2
        np.testing.assert_array_equal(atm.insolation_now(), i0)

    def test_hemispheres_antiphase(self):
        atm = AtmosphereModel(shape=(20, 40), seasonal=True)
        summer = atm.insolation_now()
        atm.time = YEAR / 2
        winter = atm.insolation_now()
        north = slice(14, 20)
        south = slice(0, 6)
        assert summer[north].mean() > winter[north].mean()
        assert summer[south].mean() < winter[south].mean()

    def test_annual_period(self):
        atm = AtmosphereModel(shape=(20, 40), seasonal=True)
        i0 = atm.insolation_now()
        atm.time = YEAR
        np.testing.assert_allclose(atm.insolation_now(), i0, rtol=1e-12)

    def test_global_mean_roughly_preserved(self):
        """The modulation is antisymmetric: the global mean moves little."""
        atm = AtmosphereModel(shape=(40, 40), seasonal=True)
        base = atm.insolation_now().mean()
        atm.time = YEAR / 4
        assert atm.insolation_now().mean() == pytest.approx(base, rel=0.1)


class TestSeasonalResponse:
    """Atmosphere-only (fixed SST), so spin-up drift cannot mask the
    seasonal signal: two model years, northern midlatitude mean."""

    def _run_year(self, seasonal: bool) -> np.ndarray:
        atm = AtmosphereModel(
            shape=(20, 40), seasonal=seasonal, seasonal_amplitude=0.5
        )
        fixed_sst = atm.temperature + 2.0
        north = slice(14, 19)
        series = []
        for _ in range(72):  # two model years, 10-day steps
            atm.step(fixed_sst, dt=10 * 86400.0)
            series.append(float(atm.temperature[north].mean()))
        return np.array(series)

    def test_midlatitude_temperature_cycles(self):
        """With seasonal forcing the second-year temperature oscillates
        with the annual period (max and min well separated in time)."""
        series = self._run_year(seasonal=True)[36:]
        spread = series.max() - series.min()
        assert spread > 1.0
        # Peak and trough roughly half a year apart.
        lag = abs(int(np.argmax(series)) - int(np.argmin(series)))
        assert 12 <= lag <= 24

    def test_no_seasonal_forcing_is_flat(self):
        """Without seasonal forcing the second year is near steady."""
        steady = self._run_year(seasonal=False)[36:]
        cyclic = self._run_year(seasonal=True)[36:]
        assert steady.max() - steady.min() < 0.2 * (
            cyclic.max() - cyclic.min()
        )
