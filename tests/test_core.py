"""Tests for metacomputer orchestration: registry, RPC delegation, and
simultaneous co-allocation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AllocationRequest,
    CoAllocator,
    Metacomputer,
    RpcClient,
    RpcError,
    RpcServer,
    Site,
    serve_rpc,
)
from repro.machines import CRAY_T3E_600, SGI_ONYX2_GMD
from repro.metampi import MetaMPI


class TestMetacomputer:
    @pytest.fixture(scope="class")
    def meta(self):
        return Metacomputer()

    def test_sites_populated(self, meta):
        juelich = {m.name for m in meta.at_site(Site.JUELICH)}
        gmd = {m.name for m in meta.at_site(Site.GMD)}
        assert "Cray T3E-600" in juelich and "Cray T90" in juelich
        assert "IBM SP2" in gmd and "SGI Onyx 2 (GMD)" in gmd

    def test_unknown_machine(self, meta):
        with pytest.raises(KeyError):
            meta.machine("ENIAC")

    def test_total_peak(self, meta):
        assert meta.total_peak_gflops > 900  # two 512-node T3Es dominate

    def test_summary_text(self, meta):
        text = meta.summary()
        assert "juelich" in text and "gmd" in text
        assert "Cray T3E-600" in text

    def test_session_runs_on_testbed(self, meta):
        mc = meta.session({"Cray T3E-600": 2, "IBM SP2": 1})

        def main(comm):
            return comm.allreduce(comm.rank)

        results = mc.run(main)
        assert [r.value for r in results] == [3, 3, 3]
        assert mc.elapsed > 0


class TestRpc:
    def run_pair(self, register, calls, timeout=30):
        """Server on T3E rank 0, client on Onyx2 rank 1."""
        out = {}

        def main(comm):
            if comm.rank == 0:
                server = RpcServer(comm, peer=1)
                register(server)
                return server.serve()
            client = RpcClient(comm, peer=0)
            try:
                out["result"] = calls(client)
            finally:
                client.shutdown()
            return None

        mc = MetaMPI(wallclock_timeout=timeout)
        mc.add_machine(CRAY_T3E_600, ranks=1)
        mc.add_machine(SGI_ONYX2_GMD, ranks=1)
        results = mc.run(main)
        return out.get("result"), results[0].value  # (client result, calls served)

    def test_basic_call(self):
        def register(server):
            server.register("add", lambda a, b: a + b)

        result, served = self.run_pair(register, lambda c: c.call("add", 2, 3))
        assert result == 5
        assert served == 1

    def test_proxy_attribute_call(self):
        def register(server):
            server.register("scale", lambda arr, k: (np.asarray(arr) * k).tolist())

        result, _ = self.run_pair(register, lambda c: c.scale([1, 2, 3], k=10))
        assert result == [10, 20, 30]

    def test_remote_exception_travels(self):
        def register(server):
            @server.handler("boom")
            def boom():
                raise ValueError("remote failure")

        def calls(client):
            with pytest.raises(RpcError, match="remote failure"):
                client.boom()
            return "survived"

        result, _ = self.run_pair(register, calls)
        assert result == "survived"

    def test_unknown_procedure_is_rpc_error(self):
        def calls(client):
            with pytest.raises(RpcError):
                client.call("no_such_proc")
            return True

        result, _ = self.run_pair(lambda s: None, calls)
        assert result is True

    def test_multiple_sequential_calls(self):
        def register(server):
            state = {"n": 0}

            @server.handler("bump")
            def bump():
                state["n"] += 1
                return state["n"]

        def calls(client):
            return [client.bump() for _ in range(4)]

        result, served = self.run_pair(register, calls)
        assert result == [1, 2, 3, 4]
        assert served == 4

    def test_serve_rpc_helper(self):
        def main(comm):
            if comm.rank == 0:
                return serve_rpc(comm, {"neg": lambda x: -x}, peer=1)
            client = RpcClient(comm, peer=0)
            v = client.neg(9)
            client.shutdown()
            return v

        mc = MetaMPI(wallclock_timeout=30)
        mc.add_machine(CRAY_T3E_600, ranks=2)
        results = mc.run(main)
        assert results[1].value == -9

    def test_reserved_names_rejected(self):
        class FakeComm:
            pass

        server = RpcServer.__new__(RpcServer)
        server._handlers = {}
        with pytest.raises(ValueError):
            server.register("__shutdown__", lambda: None)


class TestCoAllocation:
    def caps(self):
        return {"t3e": 512, "scanner": 1, "workbench": 1, "onyx2": 12}

    def test_parallel_when_capacity_allows(self):
        alloc = CoAllocator(self.caps())
        r1 = alloc.submit(
            AllocationRequest("a", {"t3e": 128}, duration=100)
        )
        r2 = alloc.submit(
            AllocationRequest("b", {"t3e": 128}, duration=100)
        )
        assert r1.start == 0.0 and r2.start == 0.0

    def test_scarce_resource_serializes(self):
        """The fMRI scenario: two sessions both need the single scanner."""
        alloc = CoAllocator(self.caps())
        fmri = {"t3e": 256, "scanner": 1, "onyx2": 12, "workbench": 1}
        r1 = alloc.submit(AllocationRequest("s1", fmri, duration=3600))
        r2 = alloc.submit(AllocationRequest("s2", fmri, duration=3600))
        assert r1.start == 0.0
        assert r2.start == 3600.0

    def test_all_or_nothing(self):
        """Co-allocation: plenty of T3E left, but the scanner gates the
        whole request."""
        alloc = CoAllocator(self.caps())
        alloc.submit(
            AllocationRequest("hog", {"scanner": 1}, duration=500)
        )
        r = alloc.submit(
            AllocationRequest("fmri", {"t3e": 8, "scanner": 1}, duration=100)
        )
        assert r.start == 500.0

    def test_backfill_around_gaps(self):
        alloc = CoAllocator(self.caps())
        alloc.submit(AllocationRequest("big", {"t3e": 512}, duration=100))
        r = alloc.submit(
            AllocationRequest("after", {"t3e": 512}, duration=50)
        )
        small = alloc.submit(
            AllocationRequest("small-scanner", {"scanner": 1}, duration=10)
        )
        assert r.start == 100.0
        assert small.start == 0.0  # independent resource: no wait

    def test_earliest_start_respected(self):
        alloc = CoAllocator(self.caps())
        r = alloc.submit(
            AllocationRequest(
                "later", {"t3e": 1}, duration=10, earliest_start=42.0
            )
        )
        assert r.start == 42.0

    def test_release_frees_capacity(self):
        alloc = CoAllocator(self.caps())
        r1 = alloc.submit(AllocationRequest("a", {"scanner": 1}, duration=100))
        alloc.release(r1)
        r2 = alloc.submit(AllocationRequest("b", {"scanner": 1}, duration=100))
        assert r2.start == 0.0

    def test_unknown_resource(self):
        alloc = CoAllocator(self.caps())
        with pytest.raises(KeyError):
            alloc.submit(AllocationRequest("x", {"cray-4": 1}, duration=10))

    def test_impossible_capacity(self):
        alloc = CoAllocator(self.caps())
        with pytest.raises(RuntimeError):
            alloc.earliest_start(
                AllocationRequest("x", {"t3e": 1024}, duration=10)
            )

    def test_request_validation(self):
        with pytest.raises(ValueError):
            AllocationRequest("x", {}, duration=10)
        with pytest.raises(ValueError):
            AllocationRequest("x", {"t3e": 1}, duration=0)
        with pytest.raises(ValueError):
            AllocationRequest("x", {"t3e": -1}, duration=10)

    def test_utilization(self):
        alloc = CoAllocator({"t3e": 100})
        alloc.submit(AllocationRequest("a", {"t3e": 50}, duration=100))
        assert alloc.utilization("t3e", horizon=100) == pytest.approx(0.5)

    def test_usage_at(self):
        alloc = CoAllocator(self.caps())
        alloc.submit(AllocationRequest("a", {"t3e": 10}, duration=50))
        assert alloc.usage_at("t3e", 25) == 10
        assert alloc.usage_at("t3e", 75) == 0

    @given(
        needs=st.lists(
            st.integers(1, 60), min_size=1, max_size=12
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_never_oversubscribed_property(self, needs):
        """Property: at no sampled time does usage exceed capacity."""
        alloc = CoAllocator({"r": 100})
        for i, n in enumerate(needs):
            alloc.submit(AllocationRequest(f"q{i}", {"r": n}, duration=10))
        ends = [r.end for r in alloc.reservations]
        starts = [r.start for r in alloc.reservations]
        for t in sorted(set(starts + ends)):
            assert alloc.usage_at("r", t) <= 100
            assert alloc.usage_at("r", t + 0.5) <= 100
