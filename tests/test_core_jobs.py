"""Tests for the UNICORE-style job scheduler over the metacomputer."""

import pytest

from repro.core import JobDescription, JobScheduler
from repro.metampi import SUM


def sum_program(comm):
    return comm.allreduce(comm.rank + 1, op=SUM)


def args_program(comm, factor):
    return comm.rank * factor


class TestJobDescription:
    def test_needs_merges_extras(self):
        job = JobDescription(
            name="fmri",
            program=sum_program,
            ranks={"Cray T3E-600": 256},
            duration=3600,
            extra_resources={"scanner": 1},
        )
        assert job.needs() == {"Cray T3E-600": 256, "scanner": 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            JobDescription("x", sum_program, ranks={}, duration=10)
        with pytest.raises(ValueError):
            JobDescription(
                "x", sum_program, ranks={"Cray T3E-600": 0}, duration=10
            )


class TestJobScheduler:
    def scheduler(self):
        return JobScheduler(extra_capacities={"scanner": 1})

    def test_submit_and_run(self):
        sched = self.scheduler()
        rec = sched.submit(
            JobDescription(
                "sum", sum_program, ranks={"Cray T3E-600": 3}, duration=100
            )
        )
        assert rec.state == "queued"
        sched.run(rec)
        assert rec.state == "done"
        assert [r.value for r in rec.results] == [6, 6, 6]

    def test_unknown_machine_rejected_at_submit(self):
        sched = self.scheduler()
        with pytest.raises(KeyError):
            sched.submit(
                JobDescription(
                    "bad", sum_program, ranks={"Cray-4": 2}, duration=10
                )
            )

    def test_conflicting_jobs_serialized_by_scanner(self):
        sched = self.scheduler()
        a = sched.submit(
            JobDescription(
                "fmri-a", sum_program, ranks={"Cray T3E-600": 128},
                duration=600, extra_resources={"scanner": 1},
            )
        )
        b = sched.submit(
            JobDescription(
                "fmri-b", sum_program, ranks={"Cray T3E-600": 128},
                duration=600, extra_resources={"scanner": 1},
            )
        )
        assert a.start == 0.0
        assert b.start == 600.0

    def test_job_clock_offset_by_reservation(self):
        """A job granted a later slot sees virtual time from its start."""
        sched = self.scheduler()
        sched.submit(
            JobDescription(
                "first", sum_program, ranks={"Cray T3E-600": 512},
                duration=1000,
            )
        )
        b = sched.submit(
            JobDescription(
                "second", lambda comm: comm.wtime(),
                ranks={"Cray T3E-600": 512}, duration=100,
            )
        )
        sched.run_all()
        assert all(v.value >= 1000.0 for v in b.results)

    def test_args_passed_through(self):
        sched = self.scheduler()
        rec = sched.submit(
            JobDescription(
                "scaled", args_program, ranks={"IBM SP2": 2},
                duration=10, args=(7,),
            )
        )
        sched.run(rec)
        assert [r.value for r in rec.results] == [0, 7]

    def test_double_run_rejected(self):
        sched = self.scheduler()
        rec = sched.submit(
            JobDescription(
                "once", sum_program, ranks={"IBM SP2": 2}, duration=10
            )
        )
        sched.run(rec)
        with pytest.raises(RuntimeError):
            sched.run(rec)

    def test_failed_job_marked(self):
        from repro.metampi import RankFailed

        def boom(comm):
            raise RuntimeError("job crashed")

        sched = self.scheduler()
        rec = sched.submit(
            JobDescription("boom", boom, ranks={"IBM SP2": 1}, duration=10)
        )
        with pytest.raises(RankFailed):
            sched.run(rec)
        assert rec.state == "failed"

    def test_schedule_report(self):
        sched = self.scheduler()
        sched.submit(
            JobDescription(
                "fmri", sum_program, ranks={"Cray T3E-600": 256},
                duration=3600, extra_resources={"scanner": 1},
            )
        )
        text = sched.schedule_report()
        assert "fmri" in text and "scanner:1" in text

    def test_cross_site_job(self):
        sched = self.scheduler()
        rec = sched.submit(
            JobDescription(
                "meta", sum_program,
                ranks={"Cray T3E-600": 2, "IBM SP2": 2}, duration=60,
            )
        )
        sched.run(rec)
        assert [r.value for r in rec.results] == [10, 10, 10, 10]
        assert rec.elapsed_virtual > 0
