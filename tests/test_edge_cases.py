"""Edge-case coverage across packages: inputs at the boundaries and the
interactions of competing traffic."""

import numpy as np
import pytest

from repro.fire import HeadPhantom, ScannerConfig, SimulatedScanner
from repro.fire.decomposition import slab_bounds
from repro.machines.t3e_model import default_model
from repro.metampi import FortranArray, MetaMPI
from repro.machines import CRAY_T3E_600
from repro.netsim import BulkTransfer, CbrFlow, ClassicalIP, build_testbed
from repro.netsim.ip import TESTBED_MTU
from repro.viz import WorkbenchSpec, slice_mosaic

MB = 2**20
IP64K = ClassicalIP(TESTBED_MTU)


class TestCbrUnderLoad:
    def test_video_jitter_grows_under_competing_bulk(self):
        """A D1 stream sharing the Onyx2's 622 attachment with a bulk
        transfer picks up jitter it does not have alone."""
        tb = build_testbed()
        clean = CbrFlow(
            tb.net, "onyx2-gmd", "onyx2-juelich",
            frame_bytes=1_350_000, interval=0.04, n_frames=25,
        ).run()

        tb2 = build_testbed()
        flow = CbrFlow(
            tb2.net, "onyx2-gmd", "onyx2-juelich",
            frame_bytes=1_350_000, interval=0.04, n_frames=25,
        )
        BulkTransfer(tb2.net, "onyx2-gmd", "e500-gmd", 30 * MB, ip=IP64K)
        tb2.env.run(until=flow.done)
        assert flow.jitter > clean.jitter
        assert flow.frames_received == 25  # no loss, just delay variation


class TestDegenerateGeometries:
    def test_single_slice_volume(self):
        ph = HeadPhantom(shape=(1, 32, 32))
        anat = ph.anatomy()
        assert anat.shape == (1, 32, 32)
        mosaic = slice_mosaic(anat, np.zeros_like(anat), columns=4)
        assert mosaic.shape == (32, 32, 3)

    def test_one_voxel_per_rank_decomposition(self):
        n = 7
        sizes = [
            (lambda b: b[1] - b[0])(slab_bounds(n, n, p)) for p in range(n)
        ]
        assert sizes == [1] * n

    def test_model_single_voxel_image(self):
        model = default_model()
        t = model.total_time(1, voxels=1)
        assert 0 < t < model.total_time(1)

    def test_scanner_single_frame_stimulus(self):
        """One-frame runs are rejected cleanly (no reference vector)."""
        ph = HeadPhantom()
        with pytest.raises(ValueError):
            SimulatedScanner(
                ph, ScannerConfig(n_frames=1), stimulus=np.array([0.0])
            )

    def test_workbench_zero_stereo_geometry(self):
        spec = WorkbenchSpec(planes=1, stereo=False, width=640, height=480)
        assert spec.images_per_frame == 1
        assert spec.frame_bytes == 640 * 480 * 3


class TestInteropEdges:
    def test_fortran_array_1d(self):
        fa = FortranArray(np.arange(5.0))
        assert fa.get(1) == 0.0
        fa.set(5, 99.0)
        assert fa.data[4] == 99.0

    def test_roundtrip_preserves_non_contiguous(self):
        base = np.arange(24.0).reshape(4, 6)
        view = base[::2, ::3]  # non-contiguous
        fa = FortranArray(view)
        np.testing.assert_array_equal(fa.to_c(), view)


class TestRuntimeEdges:
    def test_size_one_world_collectives(self):
        def main(comm):
            return (
                comm.bcast("x", root=0),
                comm.allreduce(5),
                comm.gather(7, root=0),
                comm.alltoall([9]),
            )

        mc = MetaMPI(wallclock_timeout=15)
        mc.add_machine(CRAY_T3E_600, ranks=1)
        [res] = mc.run(main)
        assert res.value == ("x", 5, [7], [9])

    def test_self_send_receive(self):
        def main(comm):
            comm.send("loopback", comm.rank, tag=1)
            return comm.recv(source=comm.rank, tag=1)

        mc = MetaMPI(wallclock_timeout=15)
        mc.add_machine(CRAY_T3E_600, ranks=1)
        [res] = mc.run(main)
        assert res.value == "loopback"

    def test_zero_byte_buffer(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.empty(0), 1)
                return None
            buf = np.empty(0)
            comm.Recv(buf, source=0)
            return buf.size

        mc = MetaMPI(wallclock_timeout=15)
        mc.add_machine(CRAY_T3E_600, ranks=2)
        results = mc.run(main)
        assert results[1].value == 0
