"""Smoke tests: the lighter example scripts must run to completion.

(The heavy renders — realtime_fmri_session, render_gallery,
testbed_extensions — are exercised piecewise by the unit and
integration tests; running them here would dominate the suite's
wall time.)
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def examples_on_path(monkeypatch, tmp_path):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    # Example scripts must never write into the repository: point their
    # output directory at this test's tmp dir.
    monkeypatch.setenv("REPRO_EXAMPLES_OUT", str(tmp_path / "output"))
    yield
    for name in list(sys.modules):
        if name in {
            "quickstart",
            "network_characterization",
            "job_scheduling",
            "vampir_trace_demo",
            "meg_music_localization",
            "climate_coupling",
            "telemetry_dashboard",
        }:
            del sys.modules[name]


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "Table 1" in out
    assert "throughput period" in out


def test_network_characterization(capsys):
    out = run_example("network_characterization", capsys)
    assert "HiPPI" in out
    assert "bottleneck: sp2.iobus" in out


def test_job_scheduling(capsys):
    out = run_example("job_scheduling", capsys)
    assert "fmri-morning" in out
    assert "done" in out


def test_vampir_trace_demo(capsys):
    out = run_example("vampir_trace_demo", capsys)
    assert "timeline" in out
    assert "load imbalance" in out


def test_telemetry_dashboard(capsys):
    out = run_example("telemetry_dashboard", capsys)
    assert "ALERT  wan-down" in out
    assert "clear  wan-down" in out
    assert "testbed weather map" in out
    assert "exported" in out


def test_meg_music_localization(capsys):
    out = run_example("meg_music_localization", capsys)
    assert "localization error" in out
    assert "superlinear" in out.lower() or "combined" in out


def test_climate_coupling(capsys):
    out = run_example("climate_coupling", capsys)
    assert "mean SST" in out
