"""Tests for the FIRE control-panel model (the Figure-3 lower panel)."""

import numpy as np
import pytest

from repro.fire import HeadPhantom
from repro.fire.gui import ControlPanel, RoiSpec


@pytest.fixture()
def panel():
    return ControlPanel(n_frames=40, tr=2.0)


class TestClipLevel:
    def test_default_and_set(self, panel):
        assert panel.clip_level == 0.5
        panel.set_clip_level(0.7)
        assert panel.clip_level == 0.7

    def test_bounds(self, panel):
        with pytest.raises(ValueError):
            panel.set_clip_level(0.0)
        with pytest.raises(ValueError):
            panel.set_clip_level(1.5)


class TestHemodynamics:
    def test_manual_adjustment(self, panel):
        panel.set_hemodynamics(delay=7.5, dispersion=1.4)
        assert panel.hrf.delay == 7.5
        ref = panel.reference()
        assert len(ref) == 40
        assert np.linalg.norm(ref) == pytest.approx(1.0)

    def test_invalid_rejected_and_state_kept(self, panel):
        with pytest.raises(ValueError):
            panel.set_hemodynamics(delay=-1.0, dispersion=1.0)
        assert panel.hrf.delay == 6.0  # untouched


class TestStimulus:
    def test_block_design_edit(self, panel):
        panel.set_stimulus_blocks(period_on=8, period_off=8, start_off=4)
        stim = panel.stimulus
        assert stim[:4].sum() == 0
        assert stim[4:12].sum() == 8

    def test_custom_course(self, panel):
        course = np.sin(np.linspace(0, 4 * np.pi, 40))
        panel.set_stimulus(course)
        np.testing.assert_array_equal(panel.stimulus, course)

    def test_custom_course_validated(self, panel):
        with pytest.raises(ValueError):
            panel.set_stimulus(np.ones(40))  # no variation
        with pytest.raises(ValueError):
            panel.set_stimulus(np.ones(10))  # wrong length

    def test_block_design_validated(self, panel):
        with pytest.raises(ValueError):
            panel.set_stimulus_blocks(period_on=0, period_off=5)


class TestModuleToggles:
    def test_toggle_each_module(self, panel):
        for module in ("median", "motion", "detrend", "rvo", "smoothing"):
            panel.toggle(module, False)
            assert getattr(panel.flags, module) is False
            panel.toggle(module, True)
            assert getattr(panel.flags, module) is True

    def test_unknown_module(self, panel):
        with pytest.raises(KeyError):
            panel.toggle("warp", True)

    def test_toggles_reach_t3e_module_set(self, panel):
        panel.toggle("rvo", False)
        panel.toggle("motion", False)
        assert panel.flags.t3e_modules() == ("filter",)


class TestRois:
    def test_add_and_remove(self):
        panel = ControlPanel(n_frames=20, shape=(16, 64, 64))
        ph = HeadPhantom()
        panel.add_roi("site-0", ph.sites[0].mask(ph.shape))
        assert "site-0" in panel.rois
        panel.remove_roi("site-0")
        assert panel.rois == {}

    def test_duplicate_rejected(self):
        panel = ControlPanel(n_frames=20, shape=(16, 64, 64))
        ph = HeadPhantom()
        panel.add_roi("a", ph.sites[0].mask(ph.shape))
        with pytest.raises(ValueError):
            panel.add_roi("a", ph.sites[1].mask(ph.shape))

    def test_shape_checked(self):
        panel = ControlPanel(n_frames=20, shape=(16, 64, 64))
        with pytest.raises(ValueError):
            panel.add_roi("bad", np.ones((4, 4, 4), dtype=bool))

    def test_empty_roi_rejected(self):
        with pytest.raises(ValueError):
            RoiSpec("empty", np.zeros((2, 2, 2), dtype=bool))

    def test_nonbool_roi_rejected(self):
        with pytest.raises(ValueError):
            RoiSpec("ints", np.ones((2, 2, 2), dtype=int))

    def test_remove_unknown(self):
        panel = ControlPanel(n_frames=20)
        with pytest.raises(KeyError):
            panel.remove_roi("ghost")


class TestEventLogAndSnapshot:
    def test_events_recorded_in_order(self, panel):
        panel.set_clip_level(0.6)
        panel.toggle("rvo", False)
        panel.set_hemodynamics(5.0, 1.0)
        assert panel.events == [
            "clip_level=0.60",
            "module rvo=off",
            "hrf delay=5.00 dispersion=1.00",
        ]

    def test_snapshot_roundtrip(self, panel):
        panel.set_clip_level(0.8)
        panel.toggle("smoothing", True)
        snap = panel.snapshot()
        assert snap["clip_level"] == 0.8
        assert snap["modules"]["smoothing"] is True
        assert snap["hrf"] == (6.0, 1.0)
        assert snap["n_events"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ControlPanel(n_frames=1)
        with pytest.raises(ValueError):
            ControlPanel(tr=0.0)
