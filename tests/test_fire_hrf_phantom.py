"""Tests for HRF models, reference vectors, the head phantom, and the
simulated scanner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fire import (
    ActivationSite,
    HeadPhantom,
    ScannerConfig,
    SimulatedScanner,
    boxcar_stimulus,
    reference_vector,
)
from repro.fire.hrf import HrfModel, reference_bank


class TestHrf:
    def test_peak_at_delay(self):
        hrf = HrfModel(delay=6.0, dispersion=1.0)
        t = np.linspace(0, 30, 3001)
        h = hrf.sample(t)
        assert t[np.argmax(h)] == pytest.approx(6.0, abs=0.05)
        assert h.max() == pytest.approx(1.0, abs=1e-6)

    def test_zero_before_onset(self):
        hrf = HrfModel(delay=6.0, dispersion=1.0)
        assert hrf.sample(np.array([0.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_dispersion_broadens(self):
        t = np.linspace(0, 30, 3001)
        narrow = HrfModel(6.0, 0.7).sample(t)
        broad = HrfModel(6.0, 1.8).sample(t)

        def width(h):
            return np.count_nonzero(h > 0.5)

        assert width(broad) > width(narrow)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HrfModel(delay=0.0)
        with pytest.raises(ValueError):
            HrfModel(delay=6.0, dispersion=-1.0)

    @given(
        delay=st.floats(2.0, 10.0), dispersion=st.floats(0.5, 2.0)
    )
    @settings(max_examples=25, deadline=None)
    def test_kernel_nonnegative_property(self, delay, dispersion):
        kern = HrfModel(delay, dispersion).kernel(tr=2.0)
        assert np.all(kern >= 0)
        assert kern.max() <= 1.0 + 1e-9


class TestStimulus:
    def test_boxcar_structure(self):
        stim = boxcar_stimulus(40, period_on=10, period_off=10, start_off=5)
        assert stim[:5].sum() == 0
        assert stim[5:15].sum() == 10
        assert stim[15:25].sum() == 0

    def test_boxcar_needs_frames(self):
        with pytest.raises(ValueError):
            boxcar_stimulus(0)

    def test_reference_vector_normalized(self):
        ref = reference_vector(boxcar_stimulus(60), HrfModel())
        assert ref.mean() == pytest.approx(0.0, abs=1e-12)
        assert np.linalg.norm(ref) == pytest.approx(1.0)

    def test_reference_lags_stimulus(self):
        """Hemodynamics delay the response behind the stimulus."""
        stim = boxcar_stimulus(60, period_on=15, period_off=15)
        ref = reference_vector(stim, HrfModel(delay=6.0), tr=2.0)
        lag = np.argmax(
            [np.dot(np.roll(stim - stim.mean(), k), ref) for k in range(10)]
        )
        assert 1 <= lag <= 6

    def test_degenerate_stimulus_rejected(self):
        with pytest.raises(ValueError):
            reference_vector(np.zeros(40), HrfModel())

    def test_reference_bank_shape_and_rows(self):
        bank = reference_bank(
            boxcar_stimulus(40), delays=[4, 6, 8], dispersions=[0.8, 1.2]
        )
        assert bank.shape == (6, 40)
        norms = np.linalg.norm(bank, axis=1)
        np.testing.assert_allclose(norms, 1.0)


class TestPhantom:
    def test_geometry(self):
        ph = HeadPhantom()
        assert ph.anatomy().shape == (16, 64, 64)
        assert ph.shape == (16, 64, 64)

    def test_anatomy_structure(self):
        ph = HeadPhantom()
        anat = ph.anatomy()
        brain = ph.brain_mask()
        assert anat[brain].mean() > 2 * anat[~brain].mean()
        # corners are air
        assert anat[0, 0, 0] == 0.0

    def test_sites_inside_brain(self):
        ph = HeadPhantom()
        act = ph.activation_mask()
        assert act.any()
        assert (act & ~ph.brain_mask()).sum() == 0

    def test_amplitude_map(self):
        ph = HeadPhantom()
        amp = ph.activation_amplitude()
        assert amp.max() == pytest.approx(0.04)
        assert amp[~ph.activation_mask()].max() == 0.0

    def test_custom_sites(self):
        site = ActivationSite(center=(8, 32, 32), radius=3, amplitude=0.1)
        ph = HeadPhantom(sites=(site,))
        assert ph.activation_amplitude().max() == pytest.approx(0.1)
        assert ph.site_parameters().shape == (1, 2)

    def test_highres_anatomy(self):
        ph = HeadPhantom()
        hr = ph.highres_anatomy((32, 64, 64))
        assert hr.shape == (32, 64, 64)
        assert hr.max() > 0

    def test_deterministic(self):
        a1 = HeadPhantom(seed=3).anatomy()
        a2 = HeadPhantom(seed=3).anatomy()
        np.testing.assert_array_equal(a1, a2)


class TestScanner:
    def mk(self, **kw):
        cfg = ScannerConfig(n_frames=24, **kw)
        return SimulatedScanner(HeadPhantom(), cfg)

    def test_frame_geometry_and_bytes(self):
        sc = self.mk()
        assert sc.frame(0).shape == (16, 64, 64)
        # 64*64*16 voxels at 2 bytes = 128 KByte raw
        assert sc.image_bytes == 64 * 64 * 16 * 2

    def test_frame_bounds_checked(self):
        sc = self.mk()
        with pytest.raises(IndexError):
            sc.frame(24)

    def test_bold_signal_in_active_voxels(self):
        sc = self.mk(noise_sigma=0.0, drift_per_frame=0.0, drift_amplitude=0.0)
        ph = sc.phantom
        act = ph.sites[0].mask(ph.shape)
        stim_on = int(np.argmax(sc.stimulus)) + 4  # allow hemodynamic lag
        base = sc.frame(0)[act].mean()
        active = sc.frame(min(stim_on, 23))[act].mean()
        assert active > base * 1.005

    def test_drift_raises_baseline(self):
        sc = self.mk(noise_sigma=0.0)
        ph = sc.phantom
        quiet = ph.brain_mask() & ~ph.activation_mask()
        early = sc.frame(0)[quiet].mean()
        late = sc.frame(23)[quiet].mean()
        assert late > early + 3.0

    def test_motion_injection(self):
        still = self.mk(noise_sigma=0.0)
        moving = SimulatedScanner(
            HeadPhantom(),
            ScannerConfig(n_frames=24, noise_sigma=0.0, motion_amplitude=2.0),
        )
        np.testing.assert_array_equal(moving.true_motion(0), [0, 0, 0])
        assert np.linalg.norm(moving.true_motion(6)) > 0.5
        diff = np.abs(moving.frame(6) - still.frame(6)).mean()
        assert diff > 1.0

    def test_frames_iterator_timing(self):
        sc = self.mk()
        frames = list(sc.frames())
        assert len(frames) == 24
        assert frames[3][1] == pytest.approx(3 * sc.config.tr)

    def test_deterministic_frames(self):
        a = self.mk().frame(5)
        b = self.mk().frame(5)
        np.testing.assert_array_equal(a, b)

    def test_stimulus_length_validated(self):
        with pytest.raises(ValueError):
            SimulatedScanner(
                HeadPhantom(), ScannerConfig(n_frames=10), stimulus=np.ones(5)
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScannerConfig(n_frames=0)
        with pytest.raises(ValueError):
            ScannerConfig(tr=0)
