"""Tests for the k-space acquisition/reconstruction layer."""

import numpy as np
import pytest

from repro.fire import HeadPhantom
from repro.fire.kspace import (
    acquire_kspace,
    acquisition_time,
    partial_fourier_mask,
    reconstruct,
    reconstruct_partial_fourier,
)


@pytest.fixture(scope="module")
def head():
    return HeadPhantom().anatomy()


class TestRoundTrip:
    def test_noiseless_reconstruction_exact(self, head):
        k = acquire_kspace(head)
        img = reconstruct(k)
        np.testing.assert_allclose(img, head, atol=1e-8)

    def test_shapes_preserved(self, head):
        k = acquire_kspace(head)
        assert k.shape == head.shape
        assert np.iscomplexobj(k)
        assert reconstruct(k).shape == head.shape

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            acquire_kspace(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            reconstruct(np.zeros((4, 4), dtype=complex))

    def test_dc_line_carries_slice_sum(self, head):
        k = acquire_kspace(head)
        np.testing.assert_allclose(
            k[:, 0, 0].real, head.sum(axis=(1, 2)), rtol=1e-10
        )


class TestNoise:
    def test_image_channel_noise_calibrated(self):
        """σ in image units: a zero object reconstructs to Rayleigh noise
        with the mean of a Rayleigh(σ) ≈ 1.25 σ."""
        rng = np.random.default_rng(7)
        zero = np.zeros((8, 64, 64))
        img = reconstruct(acquire_kspace(zero, noise_sigma=5.0, rng=rng))
        assert img.mean() == pytest.approx(5.0 * np.sqrt(np.pi / 2), rel=0.05)

    def test_rician_background_floor(self, head):
        """Air around the head is non-zero in a magnitude image."""
        rng = np.random.default_rng(8)
        img = reconstruct(acquire_kspace(head, noise_sigma=6.0, rng=rng))
        corner = img[:, :5, :5]
        assert corner.mean() > 3.0  # Rician floor, not ~0

    def test_signal_dominates_in_brain(self, head):
        rng = np.random.default_rng(9)
        img = reconstruct(acquire_kspace(head, noise_sigma=6.0, rng=rng))
        brain = HeadPhantom().brain_mask()
        assert img[brain].mean() == pytest.approx(head[brain].mean(), rel=0.05)

    def test_noise_deterministic_with_rng(self, head):
        a = reconstruct(
            acquire_kspace(head, 4.0, rng=np.random.default_rng(3))
        )
        b = reconstruct(
            acquire_kspace(head, 4.0, rng=np.random.default_rng(3))
        )
        np.testing.assert_array_equal(a, b)


class TestPartialFourier:
    def test_mask_keeps_low_frequencies(self):
        mask = partial_fourier_mask((64, 64), fraction=0.625)
        assert mask[0].all()  # DC row kept
        assert mask.sum() == 40 * 64

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            partial_fourier_mask((64, 64), fraction=0.4)
        with pytest.raises(ValueError):
            partial_fourier_mask((64, 64), fraction=1.1)

    def test_zero_filled_recon_close_but_blurred(self, head):
        k = acquire_kspace(head)
        mask = partial_fourier_mask(head.shape[1:], fraction=0.7)
        partial = reconstruct_partial_fourier(k, mask)
        full = reconstruct(k)
        rel_err = np.abs(partial - full).mean() / full.mean()
        assert 0.001 < rel_err < 0.5  # degraded, but recognizably the head

    def test_full_mask_is_exact(self, head):
        k = acquire_kspace(head)
        mask = partial_fourier_mask(head.shape[1:], fraction=1.0)
        np.testing.assert_allclose(
            reconstruct_partial_fourier(k, mask), reconstruct(k), atol=1e-10
        )

    def test_mask_shape_checked(self, head):
        k = acquire_kspace(head)
        with pytest.raises(ValueError):
            reconstruct_partial_fourier(k, np.ones((4, 4), dtype=bool))


class TestAcquisitionTime:
    def test_epi_volume_fits_2s_tr(self):
        """64x64x16 at ~800 lines/s fits the paper's 2 s repetition."""
        t = acquisition_time((16, 64, 64))
        assert 1.0 < t < 2.0

    def test_partial_fourier_accelerates(self):
        full = acquisition_time((16, 64, 64), fraction=1.0)
        fast = acquisition_time((16, 64, 64), fraction=0.625)
        assert fast == pytest.approx(0.625 * full, rel=0.02)

    def test_larger_matrices_slower(self):
        """'larger matrices can be measured at correspondingly lower
        temporal resolution' (paper §4)."""
        small = acquisition_time((16, 64, 64))
        big = acquisition_time((16, 128, 128))
        assert big == pytest.approx(2 * small)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            acquisition_time((16, 64, 64), lines_per_second=0)
