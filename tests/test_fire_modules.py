"""Tests for the FIRE processing modules: filters, motion correction,
detrending, correlation, RVO."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fire import HeadPhantom, ScannerConfig, SimulatedScanner
from repro.fire.hrf import HrfModel, boxcar_stimulus, reference_vector
from repro.fire.decomposition import (
    gather_slabs,
    scatter_slabs,
    slab_bounds,
    slab_timeseries,
)
from repro.fire.modules import (
    CorrelationAnalyzer,
    correct_motion,
    correlation_map,
    detrend_timeseries,
    detrending_basis,
    estimate_motion,
    median_filter3d,
    rvo_raster,
    rvo_refined,
    smoothing_filter3d,
)


class TestFilters:
    def test_median_removes_salt_noise(self):
        rng = np.random.default_rng(0)
        vol = np.full((8, 16, 16), 100.0)
        idx = rng.integers(0, 8 * 16 * 16, size=30)
        vol.ravel()[idx] = 10000.0
        out = median_filter3d(vol)
        assert out.max() < 5000.0

    def test_median_preserves_constant(self):
        vol = np.full((4, 8, 8), 7.0)
        np.testing.assert_array_equal(median_filter3d(vol), vol)

    def test_median_validates(self):
        with pytest.raises(ValueError):
            median_filter3d(np.zeros((4, 4, 4)), size=2)
        with pytest.raises(ValueError):
            median_filter3d(np.zeros((4, 4)))

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(1)
        vol = rng.normal(size=(8, 16, 16))
        assert smoothing_filter3d(vol).var() < 0.3 * vol.var()

    def test_smoothing_preserves_mean(self):
        rng = np.random.default_rng(2)
        vol = rng.normal(10.0, 1.0, size=(6, 10, 10))
        assert smoothing_filter3d(vol).mean() == pytest.approx(
            vol.mean(), rel=0.01
        )


class TestMotion:
    def test_recovers_known_translation(self):
        ph = HeadPhantom()
        ref = ph.anatomy()
        from scipy import ndimage

        shifted = ndimage.shift(ref, (0.0, 1.2, -0.8), order=1, mode="nearest")
        est = estimate_motion(shifted, ref)
        assert est.translation[1] == pytest.approx(1.2, abs=0.25)
        assert est.translation[2] == pytest.approx(-0.8, abs=0.25)

    def test_correction_reduces_error(self):
        ph = HeadPhantom()
        ref = ph.anatomy()
        from scipy import ndimage

        shifted = ndimage.shift(ref, (0.2, 1.0, 0.7), order=1, mode="nearest")
        est = estimate_motion(shifted, ref)
        corrected = correct_motion(shifted, est)
        before = np.abs(shifted - ref).mean()
        after = np.abs(corrected - ref).mean()
        # The estimate itself is near-exact; resampling a noisy-textured
        # volume twice (inject + correct) leaves interpolation blur, so
        # the intensity error does not go all the way to zero.
        assert after < 0.75 * before
        assert est.translation == pytest.approx([0.2, 1.0, 0.7], abs=0.1)

    def test_identity_motion_near_zero(self):
        ph = HeadPhantom()
        ref = ph.anatomy()
        est = estimate_motion(ref, ref)
        assert est.magnitude < 0.05
        assert np.all(np.abs(est.rotation) < 0.01)

    def test_iterative_scheme_iterates(self):
        ph = HeadPhantom()
        ref = ph.anatomy()
        from scipy import ndimage

        shifted = ndimage.shift(ref, (0, 2.5, 0), order=1, mode="nearest")
        est = estimate_motion(shifted, ref, max_iterations=5)
        assert 1 <= est.iterations <= 5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_motion(np.zeros((4, 4, 4)), np.zeros((4, 4, 5)))

    def test_artifact_suppression_in_correlation(self):
        """The module's purpose: motion artifacts corrupt the correlation
        map; correction restores specificity."""
        ph = HeadPhantom()
        cfg = ScannerConfig(n_frames=30, motion_amplitude=1.5, noise_sigma=3.0)
        sc = SimulatedScanner(ph, cfg)
        ref = reference_vector(sc.stimulus, HrfModel(), cfg.tr)
        raw = sc.timeseries()
        ref_vol = raw[0]
        corrected = np.stack(
            [raw[0]]
            + [
                correct_motion(raw[i], estimate_motion(raw[i], ref_vol))
                for i in range(1, 30)
            ]
        )
        quiet = ph.brain_mask() & ~ph.activation_mask()
        fp_raw = np.abs(correlation_map(raw, ref)[quiet]).mean()
        fp_cor = np.abs(correlation_map(corrected, ref)[quiet]).mean()
        assert fp_cor < fp_raw


class TestDetrend:
    def test_basis_shape(self):
        b = detrending_basis(20, order=2, cosines=1)
        assert b.shape == (20, 4)
        np.testing.assert_array_equal(b[:, 0], 1.0)

    def test_basis_validation(self):
        with pytest.raises(ValueError):
            detrending_basis(1)
        with pytest.raises(ValueError):
            detrending_basis(10, order=-1)

    def test_removes_linear_drift(self):
        t = np.arange(30, dtype=float)
        signal = np.sin(t)  # not in the drift subspace
        ts = (signal + 0.5 * t)[:, None, None, None] * np.ones((1, 2, 2, 2))
        out = detrend_timeseries(ts)
        # Drift gone: correlation with t should be ~0.
        flat = out[:, 0, 0, 0]
        drift_corr = np.corrcoef(flat, t)[0, 1]
        assert abs(drift_corr) < 0.1

    def test_preserves_mean(self):
        rng = np.random.default_rng(3)
        ts = rng.normal(100.0, 1.0, size=(20, 3, 3))
        out = detrend_timeseries(ts)
        np.testing.assert_allclose(
            out.mean(axis=0), ts.mean(axis=0), atol=1e-8
        )

    def test_improves_correlation_under_drift(self):
        ph = HeadPhantom()
        cfg = ScannerConfig(n_frames=40, drift_per_frame=2.0, noise_sigma=2.0)
        sc = SimulatedScanner(ph, cfg)
        ts = sc.timeseries()
        ref = reference_vector(sc.stimulus, HrfModel(), cfg.tr)
        act = ph.activation_mask()
        raw_contrast = correlation_map(ts, ref)[act].mean()
        det_contrast = correlation_map(detrend_timeseries(ts), ref)[act].mean()
        assert det_contrast > raw_contrast

    def test_basis_row_mismatch(self):
        with pytest.raises(ValueError):
            detrend_timeseries(np.zeros((10, 2, 2)), detrending_basis(8))


class TestCorrelation:
    def test_perfect_correlation(self):
        ref = reference_vector(boxcar_stimulus(30), HrfModel())
        ts = np.outer(ref, np.ones(8)).reshape(30, 2, 2, 2)
        cm = correlation_map(ts, ref)
        np.testing.assert_allclose(cm, 1.0, atol=1e-9)

    def test_anticorrelation(self):
        ref = reference_vector(boxcar_stimulus(30), HrfModel())
        ts = np.outer(-ref, np.ones(4)).reshape(30, 2, 2)
        np.testing.assert_allclose(correlation_map(ts, ref), -1.0, atol=1e-9)

    def test_constant_voxels_zero(self):
        ref = reference_vector(boxcar_stimulus(30), HrfModel())
        cm = correlation_map(np.ones((30, 2, 2)), ref)
        np.testing.assert_array_equal(cm, 0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            correlation_map(np.zeros((10, 2, 2)), np.zeros(8))

    def test_incremental_matches_batch(self):
        rng = np.random.default_rng(5)
        ref = reference_vector(boxcar_stimulus(25), HrfModel())
        ts = rng.normal(size=(25, 3, 4, 5)) + ref[:, None, None, None]
        an = CorrelationAnalyzer((3, 4, 5), ref)
        for frame in ts:
            an.update(frame)
        np.testing.assert_allclose(
            an.correlation(), correlation_map(ts, ref), atol=1e-10
        )

    def test_incremental_partial_series(self):
        """The realtime property: map available mid-measurement."""
        ref = reference_vector(boxcar_stimulus(30), HrfModel())
        ts = np.outer(ref, np.ones(4)).reshape(30, 2, 2)
        an = CorrelationAnalyzer((2, 2), ref)
        for k in range(12):
            an.update(ts[k])
        partial = correlation_map(ts[:12], ref[:12])
        np.testing.assert_allclose(an.correlation(), partial, atol=1e-10)

    def test_too_many_frames_rejected(self):
        an = CorrelationAnalyzer((2, 2), np.array([1.0, -1.0]))
        an.update(np.zeros((2, 2)))
        an.update(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            an.update(np.zeros((2, 2)))

    def test_reset(self):
        ref = np.array([1.0, -1.0, 0.5])
        an = CorrelationAnalyzer((2, 2), ref)
        an.update(np.ones((2, 2)))
        an.reset()
        assert an.n == 0

    @given(n_vox=st.integers(1, 8), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_incremental_equals_batch_property(self, n_vox, seed):
        rng = np.random.default_rng(seed)
        t = 15
        ref = reference_vector(boxcar_stimulus(t, 4, 4, 2), HrfModel())
        ts = rng.normal(size=(t, n_vox))
        an = CorrelationAnalyzer((n_vox,), ref)
        for frame in ts:
            an.update(frame)
        np.testing.assert_allclose(
            an.correlation(), correlation_map(ts, ref), atol=1e-9
        )


class TestRvo:
    @pytest.fixture(scope="class")
    def session(self):
        ph = HeadPhantom()
        cfg = ScannerConfig(n_frames=48, noise_sigma=3.0)
        sc = SimulatedScanner(ph, cfg)
        ts = detrend_timeseries(sc.timeseries())
        return ph, sc, ts

    def test_raster_recovers_site_hemodynamics(self, session):
        ph, sc, ts = session
        res = rvo_raster(ts, sc.stimulus, tr=sc.config.tr, mask=ph.brain_mask())
        for site in ph.sites:
            d, s = res.best_site_parameters(site.mask(ph.shape))
            assert d == pytest.approx(site.delay, abs=1.0)
            assert s == pytest.approx(site.dispersion, abs=0.5)

    def test_rvo_improves_mismatched_reference(self, session):
        """RVO's purpose: per-voxel fits beat one global (wrong) HRF."""
        ph, sc, ts = session
        bad_ref = reference_vector(sc.stimulus, HrfModel(9.0, 1.8), sc.config.tr)
        act = ph.activation_mask()
        fixed = correlation_map(ts, bad_ref)[act].mean()
        res = rvo_raster(ts, sc.stimulus, tr=sc.config.tr, mask=ph.brain_mask())
        assert res.correlation[act].mean() > fixed

    def test_mask_restricts_work(self, session):
        ph, sc, ts = session
        full = rvo_raster(ts, sc.stimulus, tr=sc.config.tr)
        masked = rvo_raster(ts, sc.stimulus, tr=sc.config.tr, mask=ph.brain_mask())
        assert masked.work_units < full.work_units
        assert masked.correlation[~ph.brain_mask()].max() == 0.0

    def test_refined_cheaper_than_full_raster(self, session):
        """E10 ablation mechanics: coarse grid + refinement does much less
        work than the full raster."""
        ph, sc, ts = session
        mask = ph.brain_mask()
        full = rvo_raster(ts, sc.stimulus, tr=sc.config.tr, mask=mask)
        refined = rvo_refined(ts, sc.stimulus, tr=sc.config.tr, mask=mask)
        assert refined.work_units < 0.5 * full.work_units

    def test_refined_keeps_accuracy_on_active_sites(self, session):
        ph, sc, ts = session
        mask = ph.brain_mask()
        refined = rvo_refined(ts, sc.stimulus, tr=sc.config.tr, mask=mask)
        site = ph.sites[0]
        d, s = refined.best_site_parameters(site.mask(ph.shape))
        assert d == pytest.approx(site.delay, abs=1.2)
        assert s == pytest.approx(site.dispersion, abs=0.6)


class TestDecomposition:
    def test_bounds_cover_exactly(self):
        n, p = 100, 7
        covered = []
        for part in range(p):
            lo, hi = slab_bounds(n, p, part)
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    def test_balance_within_one(self):
        sizes = [
            (lambda b: b[1] - b[0])(slab_bounds(64 * 64 * 16, 256, p))
            for p in range(256)
        ]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            slab_bounds(10, 0, 0)
        with pytest.raises(ValueError):
            slab_bounds(10, 2, 5)

    def test_scatter_gather_roundtrip(self):
        rng = np.random.default_rng(4)
        vol = rng.normal(size=(6, 8, 10))
        slabs = scatter_slabs(vol, 5)
        np.testing.assert_array_equal(gather_slabs(slabs, vol.shape), vol)

    def test_gather_size_mismatch(self):
        with pytest.raises(ValueError):
            gather_slabs([np.zeros(5)], (2, 2, 2))

    def test_slab_timeseries(self):
        ts = np.arange(2 * 12, dtype=float).reshape(2, 3, 4)
        part = slab_timeseries(ts, 3, 1)
        assert part.shape == (2, 4)
        np.testing.assert_array_equal(part[0], [4, 5, 6, 7])

    @given(n=st.integers(1, 1000), p=st.integers(1, 64))
    def test_partition_property(self, n, p):
        """Property: slabs tile [0, n) exactly, balanced to one item."""
        bounds = [slab_bounds(n, p, k) for k in range(p)]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c
        sizes = [b - a for a, b in bounds]
        assert max(sizes) - min(sizes) <= 1
