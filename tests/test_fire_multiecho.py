"""Tests for the multi-echo fMRI extension (reference [9]) and the
k-space scanner mode."""

import numpy as np
import pytest

from repro.fire import HeadPhantom, ScannerConfig, SimulatedScanner
from repro.fire.hrf import HrfModel, reference_vector
from repro.fire.modules import correlation_map, detrend_timeseries
from repro.fire.multiecho import (
    MultiEchoProtocol,
    T2_STAR,
    bold_cnr,
    cnr_improvement,
    multiecho_data_rate,
)
from repro.fire.session import required_pes_for_realtime


class TestProtocol:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiEchoProtocol(echo_times=())
        with pytest.raises(ValueError):
            MultiEchoProtocol(echo_times=(0.04, 0.02))
        with pytest.raises(ValueError):
            MultiEchoProtocol(echo_times=(-0.01,))
        with pytest.raises(ValueError):
            MultiEchoProtocol(t2_star=0.0)

    def test_signal_decay_across_echoes(self):
        proto = MultiEchoProtocol()
        signals = proto.echo_signals(np.array(1000.0))
        values = [float(s) for s in signals]
        assert values == sorted(values, reverse=True)
        assert values[0] < 1000.0

    def test_activation_raises_late_echoes(self):
        """BOLD (ΔR2* < 0) lifts the signal, more at longer TE."""
        proto = MultiEchoProtocol()
        rest = proto.echo_signals(np.array(1000.0), 0.0)
        act = proto.echo_signals(np.array(1000.0), -1.0)
        deltas = [float(a - r) for a, r in zip(act, rest)]
        assert all(d > 0 for d in deltas)
        assert deltas[-1] > deltas[0]

    def test_sensitivity_peaks_at_t2star(self):
        proto = MultiEchoProtocol()
        tes = np.linspace(0.005, 0.15, 200)
        sens = [proto.bold_sensitivity(te) for te in tes]
        assert tes[int(np.argmax(sens))] == pytest.approx(T2_STAR, abs=0.002)

    def test_weights_normalized(self):
        w = MultiEchoProtocol().weights()
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w > 0)

    def test_combine_checks_count(self):
        proto = MultiEchoProtocol()
        with pytest.raises(ValueError):
            proto.combine([np.zeros(3)])


class TestCnr:
    def test_multiecho_beats_best_single_echo(self):
        """The reference-[9] headline: combined multi-echo CNR exceeds
        any single echo's."""
        proto = MultiEchoProtocol()
        assert cnr_improvement(proto) > 1.1

    def test_more_echoes_help(self):
        two = MultiEchoProtocol(echo_times=(0.030, 0.060))
        four = MultiEchoProtocol(echo_times=(0.015, 0.040, 0.065, 0.090))
        assert bold_cnr(four) > bold_cnr(two)

    def test_cnr_scales_with_contrast(self):
        proto = MultiEchoProtocol()
        weak = bold_cnr(proto, delta_r2=-0.5)
        strong = bold_cnr(proto, delta_r2=-2.0)
        assert strong > 2 * weak

    def test_single_echo_index_selectable(self):
        proto = MultiEchoProtocol()
        early = bold_cnr(proto, combined=False, single_echo_index=0)
        best = bold_cnr(proto, combined=False)
        assert best >= early


class TestDataRate:
    def test_four_echoes_quadruple_the_rate(self):
        single = MultiEchoProtocol(echo_times=(0.040,))
        quad = MultiEchoProtocol()
        r1 = multiecho_data_rate((16, 64, 64), 2.0, single)
        r4 = multiecho_data_rate((16, 64, 64), 2.0, quad)
        assert r4 == pytest.approx(4 * r1)

    def test_order_of_magnitude_scenario(self):
        """4 echoes × a 128×128×32 matrix ≈ 32× the baseline data rate —
        'an order of magnitude beyond' indeed, and beyond the T3E."""
        proto = MultiEchoProtocol()
        base = multiecho_data_rate(
            (16, 64, 64), 2.0, MultiEchoProtocol(echo_times=(0.040,))
        )
        future = multiecho_data_rate((32, 128, 128), 2.0, proto)
        assert future > 10 * base
        # The analysis load: that voxel-echo volume has no realtime
        # partition even pipelined.
        voxel_equivalent = 32 * 128 * 128 * proto.n_echoes
        assert (
            required_pes_for_realtime(voxel_equivalent, 2.0, pipelined=True)
            is None
        )

    def test_tr_validated(self):
        with pytest.raises(ValueError):
            multiecho_data_rate((16, 64, 64), 0.0, MultiEchoProtocol())


class TestKspaceScannerMode:
    def test_rician_background(self):
        ph = HeadPhantom()
        sc = SimulatedScanner(
            ph, ScannerConfig(n_frames=16, noise_sigma=6.0, kspace_mode=True)
        )
        frame = sc.frame(0)
        air = frame[:, :5, :5]
        assert air.mean() > 3.0  # Rician floor
        assert frame.min() >= 0.0  # magnitude images are non-negative

    def test_analysis_chain_still_works(self):
        """The full correlation analysis survives Rician data."""
        ph = HeadPhantom()
        sc = SimulatedScanner(
            ph, ScannerConfig(n_frames=30, noise_sigma=4.0, kspace_mode=True)
        )
        ts = detrend_timeseries(sc.timeseries())
        ref = reference_vector(sc.stimulus, HrfModel(), sc.config.tr)
        cm = correlation_map(ts, ref)
        act = ph.activation_mask()
        quiet = ph.brain_mask() & ~act
        assert cm[act].mean() > 2 * np.abs(cm[quiet]).mean()

    def test_deterministic(self):
        ph = HeadPhantom()
        cfg = ScannerConfig(n_frames=16, noise_sigma=5.0, kspace_mode=True)
        a = SimulatedScanner(ph, cfg).frame(1)
        b = SimulatedScanner(ph, cfg).frame(1)
        np.testing.assert_array_equal(a, b)
