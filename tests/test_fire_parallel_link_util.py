"""Tests for the parallel FIRE modules and link utilization accounting."""

import numpy as np
import pytest

from repro.fire import HeadPhantom, ScannerConfig, SimulatedScanner
from repro.fire.hrf import HrfModel, reference_vector
from repro.fire.modules import correlation_map, detrend_timeseries, rvo_raster
from repro.fire.parallel import parallel_detrend_correlate, parallel_rvo
from repro.machines import CRAY_T3E_600
from repro.metampi import MetaMPI
from repro.netsim import BulkTransfer, ClassicalIP, build_testbed
from repro.netsim.ip import TESTBED_MTU


@pytest.fixture(scope="module")
def session():
    ph = HeadPhantom()
    sc = SimulatedScanner(ph, ScannerConfig(n_frames=36, noise_sigma=3.0))
    ts = sc.timeseries()
    return ph, sc, ts


def run_ranks(fn, ranks=4, timeout=60):
    mc = MetaMPI(wallclock_timeout=timeout)
    mc.add_machine(CRAY_T3E_600, ranks=ranks)
    return mc.run(fn)


class TestParallelRvo:
    @pytest.mark.parametrize("ranks", [1, 3, 4])
    def test_matches_serial(self, session, ranks):
        ph, sc, ts = session
        dts = detrend_timeseries(ts)
        mask = ph.brain_mask()
        serial = rvo_raster(dts, sc.stimulus, tr=sc.config.tr, mask=mask)
        out = {}

        def main(comm):
            res = parallel_rvo(
                comm,
                dts if comm.rank == 0 else None,
                sc.stimulus if comm.rank == 0 else None,
                tr=sc.config.tr,
                mask=mask if comm.rank == 0 else None,
            )
            if comm.rank == 0:
                out["res"] = res

        run_ranks(main, ranks=ranks)
        res = out["res"]
        np.testing.assert_allclose(res.delay, serial.delay)
        np.testing.assert_allclose(res.dispersion, serial.dispersion)
        np.testing.assert_allclose(res.correlation, serial.correlation, atol=1e-12)
        assert res.work_units == serial.work_units

    def test_nonroot_gets_none(self, session):
        ph, sc, ts = session

        def main(comm):
            return parallel_rvo(
                comm,
                ts if comm.rank == 0 else None,
                sc.stimulus if comm.rank == 0 else None,
                tr=sc.config.tr,
            )

        results = run_ranks(main, ranks=3)
        assert results[0].value is not None
        assert results[1].value is None


class TestParallelDetrendCorrelate:
    def test_matches_serial_pair(self, session):
        ph, sc, ts = session
        ref = reference_vector(sc.stimulus, HrfModel(), sc.config.tr)
        serial = correlation_map(detrend_timeseries(ts), ref)
        out = {}

        def main(comm):
            res = parallel_detrend_correlate(
                comm,
                ts if comm.rank == 0 else None,
                ref if comm.rank == 0 else None,
            )
            if comm.rank == 0:
                out["map"] = res

        run_ranks(main, ranks=4)
        np.testing.assert_allclose(out["map"], serial, atol=1e-10)


class TestLinkUtilization:
    def test_busy_fraction_of_bottleneck_near_one(self):
        """During a saturating transfer the bottleneck direction is busy
        almost continuously."""
        tb = build_testbed()
        BulkTransfer(
            tb.net, "onyx2-gmd", "onyx2-juelich", 20 * 2**20,
            ip=ClassicalIP(TESTBED_MTU),
        ).run()
        link = tb.net.nodes["onyx2-gmd"].link_to("sw-gmd")
        assert link.utilization("onyx2-gmd") > 0.85
        # reverse direction only carries ACKs
        assert link.utilization("sw-gmd") < 0.05

    def test_packet_counters(self):
        tb = build_testbed()
        ip = ClassicalIP(TESTBED_MTU)
        nbytes = 5 * 2**20
        BulkTransfer(tb.net, "t3e-600", "t3e-1200", nbytes, ip=ip).run()
        link = tb.net.nodes["t3e-600"].link_to("hippi-sw-juelich")
        assert link.tx_packets["t3e-600"] == len(ip.segments(nbytes))

    def test_idle_link_zero_utilization(self):
        tb = build_testbed()
        BulkTransfer(
            tb.net, "t3e-600", "t3e-1200", 2**20, ip=ClassicalIP(TESTBED_MTU)
        ).run()
        wan = tb.net.nodes["sw-juelich"].link_to("sw-gmd")
        assert wan.utilization("sw-juelich") == 0.0
