"""Tests for the RT-server/RT-client chain and the Figure-2 pipeline
(experiment E3 and the E8 pipelining ablation)."""

import numpy as np
import pytest

from repro.fire import (
    FirePipeline,
    HeadPhantom,
    ModuleFlags,
    PipelineConfig,
    RTClient,
    RTServer,
    ScannerConfig,
    SimulatedScanner,
)
from repro.fire.rt import parallel_correlation
from repro.machines import CRAY_T3E_600
from repro.machines.t3e_model import REF_VOXELS
from repro.metampi import MetaMPI


@pytest.fixture()
def session():
    ph = HeadPhantom()
    sc = SimulatedScanner(ph, ScannerConfig(n_frames=24, noise_sigma=3.0))
    return ph, sc


class TestRTServer:
    def test_image_timing_stamps(self, session):
        _, sc = session
        server = RTServer(sc)
        img = server.get_image(3)
        assert img.scan_time == pytest.approx(4 * sc.config.tr)
        assert img.available_time == pytest.approx(
            img.scan_time + 1.5
        )  # the paper's ~1.5 s delivery

    def test_raw_bytes_128k(self, session):
        _, sc = session
        img = RTServer(sc).get_image(0)
        assert img.nbytes == 64 * 64 * 16 * 2  # 128 KByte

    def test_stream_order(self, session):
        _, sc = session
        server = RTServer(sc)
        indices = [img.index for img in server.stream()]
        assert indices == list(range(24))
        assert server.images_served == 24


class TestRTClient:
    def test_realtime_chain_finds_activation(self, session):
        ph, sc = session
        client = RTClient(RTServer(sc), flags=ModuleFlags(motion=False, rvo=False))
        frames = client.run()
        assert len(frames) == 24
        final = frames[-1].correlation
        act = ph.activation_mask()
        quiet = ph.brain_mask() & ~act
        assert final[act].mean() > 3 * np.abs(final[quiet]).mean()

    def test_active_voxel_count_grows_with_evidence(self, session):
        ph, sc = session
        client = RTClient(RTServer(sc), flags=ModuleFlags(motion=False, rvo=False))
        frames = client.run()
        early = frames[4].active_voxels
        late = frames[-1].active_voxels
        assert late >= early

    def test_module_flags_respected(self, session):
        _, sc = session
        client = RTClient(
            RTServer(sc),
            flags=ModuleFlags(median=False, motion=False, detrend=False, rvo=False),
        )
        client.run(6)
        assert client.motion_track == []

    def test_final_analysis_requires_frames(self, session):
        _, sc = session
        client = RTClient(RTServer(sc))
        with pytest.raises(RuntimeError):
            client.final_analysis()

    def test_final_analysis_with_rvo(self, session):
        ph, sc = session
        client = RTClient(RTServer(sc), flags=ModuleFlags(motion=False))
        client.run()
        fin = client.final_analysis(mask=ph.brain_mask())
        assert fin.rvo is not None
        site = ph.sites[0]
        d, _ = fin.rvo.best_site_parameters(site.mask(ph.shape))
        assert d == pytest.approx(site.delay, abs=1.5)

    def test_motion_tracking_recorded(self):
        ph = HeadPhantom()
        sc = SimulatedScanner(
            ph, ScannerConfig(n_frames=8, motion_amplitude=1.0, noise_sigma=2.0)
        )
        client = RTClient(RTServer(sc), flags=ModuleFlags(rvo=False))
        client.run()
        assert len(client.motion_track) == 7
        fin = client.final_analysis()
        assert fin.mean_motion > 0.1

    def test_flags_map_to_t3e_modules(self):
        assert ModuleFlags().t3e_modules() == ("filter", "motion", "rvo")
        assert ModuleFlags(median=False, smoothing=False).t3e_modules() == (
            "motion",
            "rvo",
        )
        assert ModuleFlags(motion=False, rvo=False).t3e_modules() == ("filter",)


class TestParallelCorrelation:
    def test_matches_serial(self, session):
        ph, sc = session
        ts = sc.timeseries()
        from repro.fire.hrf import HrfModel, reference_vector
        from repro.fire.modules import correlation_map

        ref = reference_vector(sc.stimulus, HrfModel(), sc.config.tr)
        serial = correlation_map(ts, ref)
        got = {}

        def main(comm):
            out = parallel_correlation(ts if comm.rank == 0 else None, ref, comm)
            if comm.rank == 0:
                got["map"] = out

        mc = MetaMPI(wallclock_timeout=60)
        mc.add_machine(CRAY_T3E_600, ranks=4)
        mc.run(main)
        np.testing.assert_allclose(got["map"], serial, atol=1e-10)


class TestPipelineE3:
    def test_delay_budget_matches_paper(self):
        """E3: 1.5 + 1.1 + 1.01 + 0.6 ⇒ < 5 s at 256 PEs."""
        report = FirePipeline(PipelineConfig(pes=256, n_images=8)).run()
        bd = report.breakdown()
        assert bd["scan_to_server"] == pytest.approx(1.5)
        assert bd["transfers_and_control"] == pytest.approx(1.1)
        assert bd["t3e_processing"] == pytest.approx(1.01, abs=0.05)
        assert bd["display"] == pytest.approx(0.6)
        assert bd["total"] < 5.0
        assert report.mean_total_delay < 5.0

    def test_processing_period_is_2_7s(self):
        """E3: 'the throughput of the application ... is 2.7 seconds'."""
        report = FirePipeline(PipelineConfig(pes=256, n_images=8)).run()
        assert report.processing_period == pytest.approx(2.7, abs=0.1)

    def test_3s_repetition_is_safe(self):
        """E3: 'the scanner can safely be operated with a repetition rate
        of 3 seconds'."""
        report = FirePipeline(
            PipelineConfig(pes=256, n_images=12, repetition_time=3.0)
        ).run()
        assert report.safe_repetition_time < 3.0
        assert report.throughput_period == pytest.approx(3.0, abs=0.05)

    def test_few_pes_forces_scan_skipping(self):
        """With 16 PEs the T3E needs 7.3 s/image: the client must skip
        scans and the display period grows accordingly."""
        report = FirePipeline(
            PipelineConfig(pes=16, n_images=8, repetition_time=3.0)
        ).run()
        assert report.throughput_period > 8.0

    def test_pipelined_mode_improves_throughput(self):
        """E8 ablation: pipelining lifts throughput to max(stage), not
        sum(stages)."""
        seq = FirePipeline(
            PipelineConfig(pes=256, n_images=16, repetition_time=2.0)
        ).run()
        pipe = FirePipeline(
            PipelineConfig(pes=256, n_images=16, repetition_time=2.0, pipelined=True)
        ).run()
        assert pipe.safe_repetition_time < seq.safe_repetition_time
        assert pipe.throughput_period < seq.throughput_period

    def test_pipelining_does_not_change_latency_budget(self):
        pipe = FirePipeline(
            PipelineConfig(pes=256, n_images=12, repetition_time=3.0, pipelined=True)
        ).run()
        assert pipe.mean_total_delay == pytest.approx(4.21, abs=0.15)

    def test_larger_image_slows_pipeline(self):
        small = FirePipeline(PipelineConfig(pes=64, n_images=4)).run()
        big = FirePipeline(
            PipelineConfig(pes=64, n_images=4, voxels=REF_VOXELS * 8)
        ).run()
        assert big.t3e_time > small.t3e_time

    def test_module_subset_shortens_processing(self):
        full = FirePipeline(PipelineConfig(pes=64, n_images=4)).run()
        no_rvo = FirePipeline(
            PipelineConfig(pes=64, n_images=4, modules=("filter", "motion"))
        ).run()
        assert no_rvo.t3e_time < 0.5 * full.t3e_time

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(pes=0)
        with pytest.raises(ValueError):
            PipelineConfig(repetition_time=0.0)

    def test_comm_legs_sum_to_budget(self):
        cfg = PipelineConfig()
        up, down = cfg.comm_legs()
        assert up + down == pytest.approx(cfg.comm_time)

    def test_records_are_causally_ordered(self):
        report = FirePipeline(PipelineConfig(pes=128, n_images=6)).run()
        for r in report.records:
            assert (
                r.scan_time
                < r.server_time
                <= r.t3e_start
                < r.t3e_end
                < r.display_time
            )
