"""Tests for FireSession (real compute + virtual time in lockstep) and
the future-MRI sizing analysis."""

import numpy as np
import pytest

from repro.fire import HeadPhantom, ModuleFlags, ScannerConfig, SimulatedScanner
from repro.fire.session import FireSession, required_pes_for_realtime
from repro.machines.t3e_model import REF_VOXELS


def make_session(pes=256, tr=3.0, n_frames=30, **scan_kw):
    ph = HeadPhantom()
    sc = SimulatedScanner(ph, ScannerConfig(n_frames=n_frames, tr=tr, **scan_kw))
    return ph, FireSession(sc, pes=pes)


class TestFireSession:
    def test_delay_matches_stage_budget(self):
        _, session = make_session()
        res = session.run(6)
        expected = (
            session.config.delivery_delay
            + session.config.comm_time
            + session.t3e_time
            + session.config.display_time
        )
        for rec in res.records:
            assert rec.total_delay == pytest.approx(expected, abs=0.01)

    def test_real_analysis_converges_during_session(self):
        """The ROI correlation grows as evidence accumulates — the display
        genuinely shows the brain activating."""
        _, session = make_session(n_frames=30)
        res = session.run(12)
        rois = [r.roi_correlation for r in res.records]
        assert rois[-1] > 0.5
        assert rois[-1] > rois[0] + 0.3

    def test_detection_latency_reported(self):
        _, session = make_session(n_frames=30)
        res = session.run(12)
        assert res.detection_latency is not None
        assert res.detection_latency > res.records[0].display_time - 1e-9

    def test_records_track_scan_progression(self):
        _, session = make_session()
        res = session.run(5)
        indices = [r.index for r in res.records]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)  # never reprocess a scan

    def test_session_ends_with_measurement(self):
        from repro.fire import boxcar_stimulus

        ph = HeadPhantom()
        sc = SimulatedScanner(
            ph,
            ScannerConfig(n_frames=8, tr=3.0),
            stimulus=boxcar_stimulus(8, period_on=3, period_off=3, start_off=1),
        )
        session = FireSession(sc, pes=256)
        res = session.run(50)  # asks for more than the scanner produces
        assert len(res.records) <= 8

    def test_final_correlation_localizes_activation(self):
        ph, session = make_session(n_frames=30)
        res = session.run(15)
        corr = res.final_correlation
        act = ph.activation_mask()
        quiet = ph.brain_mask() & ~act
        assert corr[act].mean() > 2 * np.abs(corr[quiet]).mean()

    def test_motion_recorded_when_subject_moves(self):
        ph = HeadPhantom()
        sc = SimulatedScanner(
            ph, ScannerConfig(n_frames=10, tr=3.0, motion_amplitude=1.0)
        )
        session = FireSession(sc, pes=256, flags=ModuleFlags(rvo=False))
        res = session.run(6)
        assert max(r.motion_magnitude for r in res.records) > 0.1

    def test_slow_partition_skips_scans(self):
        """16 PEs with the full module set (RVO: 6.9 s) cannot keep a 3 s
        TR: scan indices jump."""
        ph = HeadPhantom()
        sc = SimulatedScanner(ph, ScannerConfig(n_frames=30, tr=3.0))
        session = FireSession(sc, pes=16, flags=ModuleFlags())
        res = session.run(5)
        indices = [r.index for r in res.records]
        gaps = np.diff(indices)
        assert gaps.max() >= 2


class TestFutureMri:
    def test_paper_configuration_needs_256(self):
        """Sequential FIRE at TR=3 s and 64x64x16 needs the 256-PE
        partition the paper used."""
        assert required_pes_for_realtime(REF_VOXELS, 3.0) == 256

    def test_pipelining_reduces_requirement(self):
        seq = required_pes_for_realtime(REF_VOXELS, 3.0)
        pipe = required_pes_for_realtime(REF_VOXELS, 3.0, pipelined=True)
        assert pipe < seq

    def test_order_of_magnitude_data_breaks_the_t3e(self):
        """The paper's closing remark: ~10x data rates are 'a challenging
        task for a supercomputer again' — sequential FIRE cannot keep up
        at any partition size."""
        assert required_pes_for_realtime(8 * REF_VOXELS, 3.0) is None
        assert required_pes_for_realtime(16 * REF_VOXELS, 3.0, pipelined=True) is None

    def test_requirement_monotone_in_data_rate(self):
        reqs = [
            required_pes_for_realtime(s * REF_VOXELS, 3.0, pipelined=True)
            for s in (1, 2, 4)
        ]
        assert all(r is not None for r in reqs)
        assert reqs == sorted(reqs)

    def test_faster_tr_needs_more_pes(self):
        slow = required_pes_for_realtime(REF_VOXELS, 4.0, pipelined=True)
        fast = required_pes_for_realtime(REF_VOXELS, 2.0, pipelined=True)
        assert fast >= slow
