"""The fluid/packet hybrid engine: workload determinism, analytic
correctness against the closed-form TCP model, fluid-vs-packet
cross-validation, and the background-load coupling seams.

The determinism contract is the load-bearing piece: the workload
generator must produce bit-identical schedules for a given seed across
Python versions (3.10-3.12 run in CI) and across serial vs. pooled
harness execution — the ``hybrid`` sweep baseline pins the schedule
digest, and these tests pin the mechanism behind it.
"""

import math

import pytest

from repro.fluid import (
    BoundedPareto,
    FluidEngine,
    HybridSimulation,
    WorkloadGenerator,
    diurnal_factor,
)
from repro.netsim import (
    BulkTransfer,
    ClassicalIP,
    FaultInjector,
    Host,
    Network,
    PingFlow,
    Switch,
    build_testbed,
)
from repro.netsim.ip import TESTBED_MTU
from repro.netsim.tcp import tcp_steady_throughput
from repro.sim import Environment

MB = 1024 * 1024
PAIRS = [("t3e-600", "sp2"), ("t90", "onyx2-gmd")]


def _generator(seed=42, **kw):
    kw.setdefault("n_sessions", 300)
    kw.setdefault("session_rate", 25.0)
    return WorkloadGenerator(PAIRS, seed=seed, **kw)


# -- workload generator ------------------------------------------------------

class TestWorkloadDeterminism:
    def test_same_seed_identical_schedule(self):
        a, b = _generator(), _generator()
        assert a.schedule() == b.schedule()
        assert a.digest() == b.digest()

    def test_different_seed_different_schedule(self):
        assert _generator(seed=1).digest() != _generator(seed=2).digest()

    def test_golden_digest(self):
        """The digest pinned across interpreter versions: if this moves,
        every committed hybrid baseline moves with it."""
        wg = _generator(seed=42)
        assert wg.digest() == (
            "d96b77544fa2a42b99c45485cc1a3d74da9c1b422a35c40fcfefac437812083c"
        )

    def test_diurnal_schedule_deterministic(self):
        a = _generator(diurnal_amplitude=0.4, diurnal_period=30.0)
        b = _generator(diurnal_amplitude=0.4, diurnal_period=30.0)
        assert a.digest() == b.digest()

    def test_times_quantized_to_microseconds(self):
        for arrival in _generator().schedule():
            assert arrival.at == round(arrival.at * 1e6) / 1e6

    def test_arrivals_ordered_and_sized(self):
        sched = _generator().schedule()
        sizes = BoundedPareto()
        assert all(a.at <= b.at for a, b in zip(sched, sched[1:]))
        assert all(sizes.lo <= a.nbytes <= sizes.hi for a in sched)
        assert len({a.name for a in sched}) == len(sched)

    def test_serial_and_pooled_sweep_runs_agree(self):
        """The schedule digest (and every other fluid metric) must be
        identical whether scenarios run inline or in pool workers."""
        from repro.harness import SweepRunner, make_spec

        specs = [
            make_spec("fluid_wan", sessions=150, session_rate=25.0),
            make_spec("fluid_wan", sessions=150, session_rate=25.0, oc48=False),
        ]
        serial = SweepRunner(serial=True).run(specs, name="fluid")
        pooled = SweepRunner(processes=2).run(specs, name="fluid")
        assert serial.ok and pooled.ok
        serial_m, pooled_m = serial.metrics(), pooled.metrics()
        # Wall-clock figures legitimately differ; everything else must
        # agree exactly, including the schedule SHA.
        for key in serial_m:
            if key.endswith(("/wall_s", "/flows_per_sec")):
                continue
            assert serial_m[key] == pooled_m[key], key
        assert any(key.endswith("/schedule_sha") for key in serial_m)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            WorkloadGenerator([], n_sessions=1, session_rate=1.0, seed=0)
        with pytest.raises(ValueError):
            _generator(n_sessions=0)
        with pytest.raises(ValueError):
            _generator(session_rate=0.0)
        with pytest.raises(ValueError):
            _generator(diurnal_amplitude=1.0)


class TestBoundedPareto:
    def test_inverse_cdf_endpoints(self):
        d = BoundedPareto()
        assert d.sample(0.0) == pytest.approx(d.lo)
        assert d.sample(1.0 - 1e-12) == pytest.approx(d.hi, rel=1e-3)

    def test_mean_matches_monte_carlo_quadrature(self):
        d = BoundedPareto(shape=1.3, lo=1e5, hi=1e8)
        n = 20000
        quad = sum(d.sample((i + 0.5) / n) for i in range(n)) / n
        assert d.mean == pytest.approx(quad, rel=0.01)

    def test_shape_one_special_case(self):
        d = BoundedPareto(shape=1.0, lo=1e5, hi=1e7)
        assert d.lo < d.mean < d.hi

    def test_heavy_tail(self):
        """Most flows are mice; most bytes ride in elephants."""
        d = BoundedPareto(shape=1.3, lo=256 * 1024, hi=1024 * MB)
        assert d.mean > 3 * d.lo  # mean far above the median regime
        assert d.sample(0.5) < d.mean

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(shape=0.0)
        with pytest.raises(ValueError):
            BoundedPareto(lo=10, hi=10)

    def test_diurnal_factor_bounds(self):
        for i in range(50):
            f = diurnal_factor(i * 1.7, period=60.0, amplitude=0.3)
            assert 0.7 - 1e-12 <= f <= 1.3 + 1e-12
        assert diurnal_factor(5.0, period=0.0, amplitude=0.3) == 1.0
        assert diurnal_factor(5.0, period=60.0, amplitude=0.0) == 1.0


# -- fluid engine ------------------------------------------------------------

class TestFluidEngine:
    def test_single_flow_matches_closed_form(self):
        """One fluid flow's FCT is exactly size / tcp_steady_throughput."""
        tb = build_testbed()
        ip = ClassicalIP(TESTBED_MTU)
        rate = tcp_steady_throughput(tb.net, "t3e-600", "sp2", ip)
        eng = FluidEngine(tb.net, ip=ip)
        eng.schedule_flow(0.0, "bulk", "t3e-600", "sp2", 64 * MB)
        eng.run()
        (done,) = eng.completed
        assert done.fct == pytest.approx(64 * MB * 8 / rate, rel=1e-9)
        assert done.mean_rate == pytest.approx(rate, rel=1e-9)

    def test_equal_flows_share_equally(self):
        tb = build_testbed()
        eng = FluidEngine(tb.net, window_bytes=8 * MB)
        for i in range(3):
            eng.schedule_flow(0.0, f"f{i}", "t3e-600", "sp2", 16 * MB)
        eng.run()
        fcts = [f.fct for f in eng.completed]
        assert max(fcts) == pytest.approx(min(fcts), rel=1e-9)

    def test_piecewise_rate_after_departure(self):
        """When the short flow leaves, the survivor speeds up: total time
        is shorter than two full-rate halves run serially would suggest."""
        tb = build_testbed()
        ip = ClassicalIP(TESTBED_MTU)
        rate = tcp_steady_throughput(tb.net, "t3e-600", "sp2", ip)
        eng = FluidEngine(tb.net, ip=ip)
        eng.schedule_flow(0.0, "long", "t3e-600", "sp2", 32 * MB)
        eng.schedule_flow(0.0, "short", "t3e-600", "sp2", 8 * MB)
        eng.run()
        done = {f.name: f for f in eng.completed}
        # Shared phase: both at rate/2 until short's 8MB drain.
        t_short = 8 * MB * 8 / (rate / 2)
        assert done["short"].fct == pytest.approx(t_short, rel=1e-9)
        # Long drains 8MB in the shared phase, then 24MB at full rate.
        t_long = t_short + 24 * MB * 8 / rate
        assert done["long"].fct == pytest.approx(t_long, rel=1e-9)
        assert eng.resolves >= 3  # arrivals, departure, final

    def test_late_arrival_triggers_resolve(self):
        tb = build_testbed()
        ip = ClassicalIP(TESTBED_MTU)
        solo_fct = 16 * MB * 8 / tcp_steady_throughput(tb.net, "t3e-600", "sp2", ip)
        eng = FluidEngine(tb.net, ip=ip)
        eng.schedule_flow(0.0, "a", "t3e-600", "sp2", 16 * MB)
        eng.schedule_flow(solo_fct / 2, "b", "t3e-600", "sp2", 16 * MB)
        eng.run()
        done = {f.name: f for f in eng.completed}
        assert done["a"].completed < done["b"].completed
        # b's mid-flight arrival halves a's rate for its second half.
        assert done["a"].fct == pytest.approx(1.5 * solo_fct, rel=1e-6)
        assert eng.resolves >= 4  # two arrivals, two departures

    def test_invalidate_paths_carries_remaining_volume(self):
        """A mid-flight topology change must neither lose nor duplicate
        the bits already transferred."""
        tb = build_testbed()
        ip = ClassicalIP(TESTBED_MTU)
        rate = tcp_steady_throughput(tb.net, "t3e-600", "sp2", ip)
        eng = FluidEngine(tb.net, ip=ip)
        eng.schedule_flow(0.0, "bulk", "t3e-600", "sp2", 32 * MB)
        half = 16 * MB * 8 / rate
        eng.advance_to(0.0)
        eng.advance_to(half)
        eng.invalidate_paths()  # same topology, rebuilt classes
        eng.run()
        (done,) = eng.completed
        assert done.fct == pytest.approx(32 * MB * 8 / rate, rel=1e-6)
        assert done.nbytes == 32 * MB  # original size survives the rebuild

    def test_mean_utilization_single_bottleneck(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Switch(env, "sw", latency=1e-6))
        net.add(Host(env, "b"))
        net.link("a", "sw", 1e9, 1e-6)
        net.link("sw", "b", 1e8, 1e-6)
        eng = FluidEngine(net)
        eng.schedule_flow(0.0, "f", "a", "b", 10 * MB)
        eng.run()
        # The 100 Mbit/s hop ran saturated the whole time (framing
        # overhead means payload rate < wire rate, utilization = 1).
        link = net.nodes["sw"].link_to("b")
        assert eng.mean_utilization(f"link:{link.name}:sw") == pytest.approx(
            1.0, rel=1e-6
        )

    def test_rejects_past_arrivals_and_bad_sizes(self):
        tb = build_testbed()
        eng = FluidEngine(tb.net)
        eng.schedule_flow(1.0, "ok", "t3e-600", "sp2", 1024)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_flow(0.5, "late", "t3e-600", "sp2", 1024)
        with pytest.raises(ValueError):
            eng.schedule_flow(eng.now + 1, "empty", "t3e-600", "sp2", 0)
        with pytest.raises(ValueError):
            eng.advance_to(eng.now - 1.0)

    def test_fct_stats_shape(self):
        tb = build_testbed()
        eng = FluidEngine(tb.net, window_bytes=8 * MB)
        assert eng.fct_stats() == {}
        for i in range(10):
            eng.schedule_flow(0.1 * i, f"f{i}", "t3e-600", "sp2", MB)
        eng.run()
        stats = eng.fct_stats()
        assert set(stats) == {"mean", "p50", "p95", "p99", "max"}
        assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]


# -- fluid vs packet cross-validation ----------------------------------------

class TestFluidVsPacket:
    def test_agreement_within_5pct_on_overlap_grid(self):
        """The validity envelope the CI sweep pins: distinct-source
        bulk transfers across the shared GMD attachment agree within 5%
        between the packet and fluid engines."""
        ip = ClassicalIP(TESTBED_MTU)
        sources = ["t3e-600", "t3e-1200", "t90"]
        for n in (1, 2, 3):
            tb = build_testbed()
            flows = [
                BulkTransfer(
                    tb.net, sources[i], "e500-gmd", 16 * MB, ip=ip,
                    window_bytes=8 * MB, name=f"b{i}",
                )
                for i in range(n)
            ]
            tb.net.env.run()
            tb2 = build_testbed()
            eng = FluidEngine(tb2.net, ip=ip, window_bytes=8 * MB)
            for i in range(n):
                eng.schedule_flow(0.0, f"b{i}", sources[i], "e500-gmd", 16 * MB)
            eng.run()
            fluid = {f.name: f for f in eng.completed}
            for f in flows:
                pkt_fct = f.end_time - f.start_time
                assert fluid[f.name].fct == pytest.approx(pkt_fct, rel=0.05)
                assert fluid[f.name].mean_rate == pytest.approx(
                    f.throughput, rel=0.05
                )


# -- hybrid coupling ---------------------------------------------------------

class TestHybridCoupling:
    def test_zero_fluid_load_is_bit_identical(self):
        """An idle hybrid must not perturb the packet world at all."""
        tb_ref = build_testbed()
        ref = PingFlow(tb_ref.net, "t3e-600", "sp2", count=30, interval=0.01)
        tb_ref.net.env.run()

        tb = build_testbed()
        HybridSimulation(tb.net)
        ping = PingFlow(tb.net, "t3e-600", "sp2", count=30, interval=0.01)
        tb.net.env.run()
        assert ping.rtt.mean == ref.rtt.mean
        assert tb.net.env.scheduled_count == tb_ref.net.env.scheduled_count

    def test_fluid_load_inflates_packet_rtt(self):
        tb_ref = build_testbed()
        ref = PingFlow(tb_ref.net, "t3e-600", "sp2", count=30, interval=0.01)
        tb_ref.net.env.run()

        tb = build_testbed()
        hyb = HybridSimulation(tb.net, window_bytes=8 * MB)
        ping = PingFlow(tb.net, "t3e-600", "sp2", count=30, interval=0.01)
        hyb.add_packet_flow(ping)
        wg = WorkloadGenerator(
            [("t3e-600", "sp2")],
            n_sessions=15,
            session_rate=50.0,
            seed=3,
            sizes=BoundedPareto(lo=4 * MB, hi=32 * MB),
        )
        hyb.offer(wg.schedule())
        tb.net.env.run()
        assert len(hyb.engine.completed) == 15
        assert ping.rtt.mean > ref.rtt.mean
        assert hyb.peak_background > 0.0

    def test_packet_demand_reserves_fluid_share(self):
        """With a packet flow declared, fluid flows on the same path get
        less than the full capacity — the solve leaves the packet share."""
        tb = build_testbed()
        ip = ClassicalIP(TESTBED_MTU)
        solo = tcp_steady_throughput(tb.net, "t3e-600", "sp2", ip)
        eng = FluidEngine(tb.net, ip=ip)
        eng.add_static_demand("packet", "t3e-600", "sp2", solo / 2)
        eng.schedule_flow(0.0, "fluid", "t3e-600", "sp2", 8 * MB)
        eng.run()
        (done,) = eng.completed
        assert done.mean_rate == pytest.approx(solo / 2, rel=1e-6)

    def test_static_demand_requires_route(self):
        tb = build_testbed()
        eng = FluidEngine(tb.net)
        with pytest.raises(ValueError):
            eng.add_static_demand("bad", "t3e-600", "no-such-host", 1e6)

    def test_background_seam_validation(self):
        tb = build_testbed()
        link = tb.net.links[tb.wan_link.name]
        with pytest.raises(ValueError):
            link.set_background_load("sw-juelich", 1.0)
        with pytest.raises(ValueError):
            link.set_background_load("sw-juelich", -0.1)
        with pytest.raises(KeyError):
            link.set_background_load("not-an-endpoint", 0.5)
        with pytest.raises(ValueError):
            HybridSimulation(build_testbed().net, max_background=1.0)

    def test_background_load_stretches_serialization(self):
        """share s on a link direction scales packet goodput by (1-s)."""
        def run(share):
            tb = build_testbed()
            link = tb.net.links[tb.wan_link.name]
            link.set_background_load("sw-juelich", share)
            bt = BulkTransfer(
                tb.net, "t3e-600", "sp2", 4 * MB, ip=ClassicalIP(TESTBED_MTU)
            )
            return bt.run()

        # The WAN wire is not the bottleneck at share=0; at 0.98 its
        # residual 2% is, and goodput must drop substantially.
        assert run(0.98) < 0.5 * run(0.0)

    def test_topology_fault_reroutes_fluid_flows(self):
        """A WAN outage mid-flight stalls fluid flows (rate 0 on the
        partitioned path) and repair resumes them — completions must
        land after the repair, with the volume intact."""
        tb = build_testbed()
        hyb = HybridSimulation(tb.net, window_bytes=8 * MB)
        wg = WorkloadGenerator(
            [("t3e-600", "sp2")],
            n_sessions=5,
            session_rate=100.0,
            seed=9,
            sizes=BoundedPareto(lo=2 * MB, hi=8 * MB),
        )
        hyb.offer(wg.schedule())
        FaultInjector(tb.net).link_down(tb.wan_link, at=0.05, duration=2.0)
        tb.net.env.run()
        assert len(hyb.engine.completed) == 5
        assert all(f.completed >= 2.05 - 1e-9 for f in hyb.engine.completed)

    def test_gateway_background_seam(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        from repro.netsim import Gateway

        net.add(Gateway(env, "gw", per_packet=1e-5))
        net.add(Host(env, "b"))
        net.link("a", "gw", 1e9, 1e-6)
        net.link("gw", "b", 1e9, 1e-6)
        gw = net.nodes["gw"]
        gw.set_background_load(0.5)
        assert gw.background_share == 0.5
        assert gw._eff_per_packet == pytest.approx(2e-5)
        gw.set_background_load(0.0)
        assert gw._eff_per_packet == pytest.approx(1e-5)
        with pytest.raises(ValueError):
            gw.set_background_load(1.0)


# -- solver core -------------------------------------------------------------

class TestMaxMinRates:
    def test_class_aggregation_matches_individuals(self):
        """Counts are exact: m identical demands solved as one class get
        the same rate as m individual demands."""
        from repro.netsim.tcp import max_min_rates

        costs_one = {"c": {"r": 1e-8}}
        agg = max_min_rates(costs_one, {"c": math.inf}, {"c": 4})
        costs_many = {f"f{i}": {"r": 1e-8} for i in range(4)}
        caps = {f"f{i}": math.inf for i in range(4)}
        indiv = max_min_rates(costs_many, caps)
        assert agg["c"] == pytest.approx(indiv["f0"], rel=1e-9)

    def test_caps_respected(self):
        from repro.netsim.tcp import max_min_rates

        rates = max_min_rates(
            {"a": {"r": 1e-8}, "b": {"r": 1e-8}},
            {"a": 10e6, "b": math.inf},
        )
        assert rates["a"] == pytest.approx(10e6)
        assert rates["b"] == pytest.approx(1e8 - 10e6, rel=1e-6)
