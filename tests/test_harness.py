"""The sweep harness: specs, cache, executors, regression gate, CLI."""

import json
import os

import pytest

from repro.harness import (
    ParameterGrid,
    ResultCache,
    SweepRunner,
    Tolerance,
    check_sweep,
    compare,
    demo_specs,
    make_spec,
    open_cache,
    write_baseline,
)
from repro.harness.cache import code_fingerprint
from repro.harness.cli import main as cli_main
from repro.harness.registry import available, get_scenario, scenario


# ---------------------------------------------------------------- specs


def test_spec_params_are_order_independent():
    a = make_spec("demo", mtu=9180, loss=0.001)
    b = make_spec("demo", loss=0.001, mtu=9180)
    assert a == b
    assert hash(a) == hash(b)
    assert a.content_hash() == b.content_hash()


def test_spec_hash_changes_with_content():
    base = make_spec("demo", mtu=9180)
    assert base.content_hash() != make_spec("demo", mtu=9181).content_hash()
    assert base.content_hash() != make_spec("demo2", mtu=9180).content_hash()
    assert base.content_hash() != make_spec("demo").content_hash()


def test_spec_seed_is_deterministic_and_32bit():
    spec = make_spec("demo", index=7)
    assert spec.seed == make_spec("demo", index=7).seed
    assert 0 <= spec.seed < 2**32
    assert spec.seed != make_spec("demo", index=8).seed


def test_spec_freezes_sequences_and_rejects_mappings():
    spec = make_spec("demo", sizes=[1, 2, 3])
    assert spec.get("sizes") == (1, 2, 3)
    assert hash(spec)  # still hashable
    with pytest.raises(TypeError):
        make_spec("demo", bad={"a": 1})


def test_spec_label_and_roundtrip():
    spec = make_spec("demo", mtu=9180, quick=True)
    assert spec.label() == "demo[mtu=9180,quick=True]"
    assert spec.as_dict() == {"mtu": 9180, "quick": True}
    assert spec.with_params(mtu=1500).get("mtu") == 1500


def test_parameter_grid_cross_product():
    grid = ParameterGrid(
        {"mtu": [9180, 65536], "loss": [0.0, 1e-3]}, fixed={"dst": "sp2"}
    )
    specs = grid.specs("wan_bulk_transfer")
    assert len(grid) == 4
    assert len(specs) == len(set(specs)) == 4
    assert all(s.get("dst") == "sp2" for s in specs)
    # Deterministic expansion order: sorted axis names, value order kept.
    assert [s.get("loss") for s in specs] == [0.0, 0.0, 1e-3, 1e-3]


# ------------------------------------------------------------- registry


def test_registry_lookup_and_duplicate_protection():
    assert "demo" in available()
    assert callable(get_scenario("wan_bulk_transfer"))
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")
    with pytest.raises(ValueError):
        scenario("demo")(lambda spec: {})


# ---------------------------------------------------------------- cache


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="f1")
    spec = make_spec("demo", index=1)
    assert cache.get(spec) is None
    cache.put(spec, {"value": 1.5}, elapsed=0.1)
    payload = cache.get(spec)
    assert payload["metrics"] == {"value": 1.5}
    assert (cache.hits, cache.misses) == (1, 1)


def test_cache_key_covers_spec_and_fingerprint(tmp_path):
    spec = make_spec("demo", index=1)
    c1 = ResultCache(str(tmp_path), fingerprint="f1")
    c1.put(spec, {"value": 1.0}, elapsed=0.0)
    # Same fingerprint, different spec -> miss.
    assert c1.get(make_spec("demo", index=2)) is None
    # Same spec, different code fingerprint -> invalidated.
    c2 = ResultCache(str(tmp_path), fingerprint="f2")
    assert c2.get(spec) is None


def test_cache_survives_corrupt_entries(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="f1")
    spec = make_spec("demo", index=1)
    cache.put(spec, {"value": 1.0}, elapsed=0.0)
    path = os.path.join(str(tmp_path), cache.key(spec) + ".json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{not json")
    assert cache.get(spec) is None  # treated as a miss, not a crash


def test_cache_clear(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="f1")
    cache.put(make_spec("demo", index=1), {}, 0.0)
    cache.put(make_spec("demo", index=2), {}, 0.0)
    assert cache.clear() == 2
    assert cache.get(make_spec("demo", index=1)) is None


def test_code_fingerprint_tracks_extra_config():
    base = code_fingerprint()
    assert base == code_fingerprint()
    assert base != code_fingerprint(extra="knob=2")


def test_open_cache_honors_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "c"))
    cache = open_cache()
    assert cache.root == str(tmp_path / "c")


# ------------------------------------------------------------ execution


def test_serial_and_pool_executors_agree():
    """Same spec + seed => identical summary across executors."""
    specs = demo_specs(n=6, duration=0.0)
    serial = SweepRunner(serial=True).run(specs, name="demo")
    pooled = SweepRunner(processes=3).run(specs, name="demo")
    assert serial.metrics() == pooled.metrics()
    assert serial.ok and pooled.ok
    assert serial.executed == pooled.executed == 6


def test_pool_speedup_on_12_scenario_demo_sweep():
    """Acceptance: 12 scenarios run >= 2x faster pooled than serially."""
    specs = demo_specs(n=12, duration=0.25)
    serial = SweepRunner(serial=True).run(specs, name="demo")
    pooled = SweepRunner(processes=4).run(specs, name="demo")
    assert serial.metrics() == pooled.metrics()
    assert serial.wall_time >= 2.0 * pooled.wall_time, (
        f"pool gave only {serial.wall_time / pooled.wall_time:.2f}x "
        f"({serial.wall_time:.2f}s serial vs {pooled.wall_time:.2f}s pooled)"
    )


def test_repeated_run_completes_from_cache(tmp_path):
    """Acceptance: a re-run executes zero scenarios."""
    specs = demo_specs(n=12, duration=0.0)
    cache = ResultCache(str(tmp_path), fingerprint=code_fingerprint())
    first = SweepRunner(serial=True, cache=cache).run(specs, name="demo")
    assert (first.executed, first.from_cache) == (12, 0)
    again = SweepRunner(serial=True, cache=cache).run(specs, name="demo")
    assert (again.executed, again.from_cache) == (0, 12)
    assert again.metrics() == first.metrics()


def test_scenario_failure_is_recorded_not_cached(tmp_path):
    specs = [make_spec("demo", fail=True), make_spec("demo", index=1)]
    cache = ResultCache(str(tmp_path), fingerprint="f1")
    result = SweepRunner(serial=True, cache=cache).run(specs, name="demo")
    assert not result.ok and result.failed == 1
    assert "asked to fail" in result.results[0].error
    assert result.results[1].ok
    # Only the success was cached; the failure re-executes next time.
    again = SweepRunner(serial=True, cache=cache).run(specs, name="demo")
    assert (again.executed, again.from_cache) == (1, 1)


def test_pool_timeout_marks_scenario_and_sweep_continues():
    specs = [make_spec("demo", hang=True), make_spec("demo", index=1)]
    result = SweepRunner(processes=2, timeout=1.0).run(specs, name="demo")
    hung, fine = result.results
    assert not hung.ok and "timeout" in hung.error
    assert fine.ok
    assert result.failed == 1


def test_serial_env_forces_serial(monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_SERIAL", "1")
    runner = SweepRunner(processes=8)
    assert runner.serial
    assert runner._effective_processes(12) == 1


def test_sweep_result_find_and_rows():
    specs = demo_specs(n=2, duration=0.0)
    result = SweepRunner(serial=True).run(specs, name="demo")
    assert result.find("demo", index=1).spec.get("index") == 1
    with pytest.raises(KeyError):
        result.find("demo", index=99)
    rows = result.rows()
    # Telemetry-JSONL shape: kind/name/labels/value per series.
    assert all(
        {"kind", "name", "labels", "value"} <= set(r) for r in rows
    )
    assert {r["labels"]["scenario"] for r in rows} == {"demo"}
    assert all(r["labels"]["sweep"] == "demo" for r in rows)


def test_sweep_result_jsonl_export(tmp_path):
    result = SweepRunner(serial=True).run(demo_specs(2, 0.0), name="demo")
    path = tmp_path / "sweep.jsonl"
    n = result.to_jsonl(str(path))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == n > 0
    assert all(json.loads(line)["kind"] == "sweep" for line in lines)


# ------------------------------------------------------ regression gate


def test_tolerance_allows_within_band():
    tol = Tolerance(rel=0.05, abs=0.5)
    assert tol.allows(100.0, 104.9)
    assert not tol.allows(100.0, 106.0)
    assert tol.allows(0.1, 0.4)  # abs floor dominates near zero


def test_comparator_passes_within_tolerance():
    report = compare(
        "s", "full", {"a/x": 102.0}, {"a/x": 100.0}, Tolerance(rel=0.05)
    )
    assert report.passed and not report.regressions


def test_comparator_fails_on_perturbed_metric():
    """Acceptance: a perturbation beyond tolerance fails the gate."""
    report = compare(
        "s", "full", {"a/x": 112.0}, {"a/x": 100.0}, Tolerance(rel=0.05)
    )
    assert not report.passed
    assert report.regressions[0].metric == "a/x"
    assert "REGRESSION" in report.format()


def test_comparator_missing_and_new_metrics():
    report = compare(
        "s", "full", {"a/new": 1.0}, {"a/gone": 2.0}, Tolerance(rel=0.05)
    )
    statuses = {d.metric: d.status for d in report.deviations}
    assert statuses == {"a/gone": "missing", "a/new": "new"}
    assert not report.passed  # missing fails; new alone would not


def test_comparator_string_metrics_compare_exactly():
    ok = compare(
        "s", "full", {"a/b": "sp2.iobus"}, {"a/b": "sp2.iobus"}, Tolerance()
    )
    bad = compare("s", "full", {"a/b": "wan"}, {"a/b": "sp2.iobus"}, Tolerance())
    assert ok.passed and not bad.passed


def test_comparator_glob_tolerances():
    report = compare(
        "s",
        "full",
        {"a/retransmits": 7, "b/retransmits": 3},
        {"a/retransmits": 4, "b/retransmits": 3},
        Tolerance(),  # exact by default
        per_metric={"*/retransmits": Tolerance(abs=5)},
    )
    assert report.passed


def test_baseline_roundtrip_and_gate(tmp_path):
    result = SweepRunner(serial=True).run(demo_specs(3, 0.0), name="demo")
    path = write_baseline(
        result, "quick", directory=str(tmp_path),
        tolerances={"default": {"rel": 0.01}},
    )
    gate = check_sweep(result, "quick", directory=str(tmp_path))
    assert gate.passed, gate.format()
    # Perturb one committed value beyond tolerance -> gate fails.
    doc = json.loads(open(path).read())
    metric = sorted(doc["modes"]["quick"]["metrics"])[0]
    doc["modes"]["quick"]["metrics"][metric] = 999.0
    with open(path, "w") as fh:
        json.dump(doc, fh)
    gate = check_sweep(result, "quick", directory=str(tmp_path))
    assert not gate.passed
    # Unknown mode is a hard error, not a silent pass.
    with pytest.raises(KeyError):
        check_sweep(result, "full", directory=str(tmp_path))


def test_write_baseline_preserves_other_modes(tmp_path):
    result = SweepRunner(serial=True).run(demo_specs(2, 0.0), name="demo")
    write_baseline(result, "quick", directory=str(tmp_path))
    write_baseline(result, "full", directory=str(tmp_path))
    doc = json.loads(open(os.path.join(str(tmp_path), "demo.json")).read())
    assert set(doc["modes"]) == {"quick", "full"}


# ------------------------------------------------------------------ CLI


def test_cli_list(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig1_network" in out and "fault_recovery" in out


def test_cli_check_passes_then_fails_on_perturbed_baseline(tmp_path, capsys):
    baselines = str(tmp_path / "baselines")
    args = ["--sweep", "table1_t3e", "--quick", "--serial", "--no-cache",
            "--baselines-dir", baselines]
    assert cli_main(args + ["--write-baselines"]) == 0
    assert cli_main(args + ["--check"]) == 0
    path = os.path.join(baselines, "table1_t3e.json")
    doc = json.loads(open(path).read())
    metric = sorted(doc["modes"]["quick"]["metrics"])[0]
    doc["modes"]["quick"]["metrics"][metric] = 1e9
    with open(path, "w") as fh:
        json.dump(doc, fh)
    assert cli_main(args + ["--check"]) == 2
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_export_jsonl(tmp_path):
    out = str(tmp_path / "sweeps.jsonl")
    rc = cli_main(
        ["--sweep", "table1_t3e", "--quick", "--serial", "--no-cache",
         "--export", out]
    )
    assert rc == 0
    lines = open(out).read().strip().splitlines()
    assert lines and all(json.loads(li)["kind"] == "sweep" for li in lines)
