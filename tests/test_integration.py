"""Cross-package integration tests: whole scenarios end to end."""


import numpy as np
import pytest

from repro.core import Metacomputer, RpcClient, RpcServer
from repro.fire import (
    FirePipeline,
    HeadPhantom,
    ModuleFlags,
    PipelineConfig,
    RTClient,
    RTServer,
    ScannerConfig,
    SimulatedScanner,
)
from repro.fire.gui import ControlPanel
from repro.fire.modules import rvo_raster
from repro.fire.session import FireSession
from repro.machines import CRAY_T3E_600, SGI_ONYX2_GMD
from repro.metampi import MetaMPI
from repro.trace import Tracer, message_matrix, render_timeline
from repro.util.images import read_pnm, write_ppm
from repro.viz import merge_functional, render_frame, slice_mosaic, workbench_fps


class TestFullFmriScenario:
    """The complete Section-4 scenario in one test: scanner → RT chain →
    delegated RVO over RPC → Figure-3 and Figure-4 renderings on disk →
    workbench feasibility."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("fmri")
        phantom = HeadPhantom()
        scanner = SimulatedScanner(
            phantom, ScannerConfig(n_frames=24, noise_sigma=3.0)
        )
        client = RTClient(RTServer(scanner), flags=ModuleFlags(rvo=False))
        frames = client.run()

        ts = np.stack(client.processed)
        mask = phantom.brain_mask()
        outcome = {}

        def program(comm):
            if comm.rank == 0:
                rpc = RpcServer(comm, peer=1)
                rpc.register(
                    "rvo",
                    lambda: rvo_raster(ts, scanner.stimulus, tr=2.0, mask=mask),
                )
                return rpc.serve()
            proxy = RpcClient(comm, peer=0)
            outcome["rvo"] = proxy.rvo()
            proxy.shutdown()
            return None

        mc = MetaMPI(wallclock_timeout=120)
        mc.add_machine(CRAY_T3E_600, ranks=1)
        mc.add_machine(SGI_ONYX2_GMD, ranks=1)
        mc.run(program)

        corr = frames[-1].correlation
        fig3 = out / "fig3.ppm"
        write_ppm(fig3, slice_mosaic(phantom.anatomy(), corr, 0.45))
        anat, func = merge_functional(
            phantom.highres_anatomy((24, 48, 48)), corr, 0.45
        )
        fig4 = out / "fig4.ppm"
        write_ppm(fig4, render_frame(anat, func, azimuth_deg=20.0))
        return phantom, frames, outcome["rvo"], fig3, fig4

    def test_activation_found(self, artifacts):
        phantom, frames, _, _, _ = artifacts
        corr = frames[-1].correlation
        assert corr[phantom.activation_mask()].mean() > 0.4

    def test_rvo_delegation_recovers_hemodynamics(self, artifacts):
        phantom, _, rvo, _, _ = artifacts
        site = phantom.sites[0]
        d, _ = rvo.best_site_parameters(site.mask(phantom.shape))
        assert d == pytest.approx(site.delay, abs=1.5)

    def test_images_written_and_readable(self, artifacts):
        _, _, _, fig3, fig4 = artifacts
        for path in (fig3, fig4):
            img = read_pnm(path)
            assert img.ndim == 3 and img.shape[2] == 3
            assert img.max() > 0

    def test_workbench_feasibility_closes_the_loop(self, artifacts):
        assert workbench_fps() < 8.0  # the paper's remote-display limit


class TestGuiDrivenSession:
    """The control panel drives a session: module toggles and clip level
    changes take effect mid-measurement."""

    def test_panel_settings_flow_into_client(self):
        panel = ControlPanel(n_frames=16, tr=2.0)
        panel.toggle("motion", False)
        panel.toggle("rvo", False)
        panel.set_clip_level(0.4)
        panel.set_hemodynamics(delay=5.0, dispersion=0.9)

        phantom = HeadPhantom()
        scanner = SimulatedScanner(
            phantom,
            ScannerConfig(n_frames=16, noise_sigma=3.0),
            stimulus=panel.stimulus,
        )
        client = RTClient(
            RTServer(scanner),
            hrf=panel.hrf,
            flags=panel.flags,
            clip_level=panel.clip_level,
        )
        frames = client.run()
        assert client.motion_track == []  # motion disabled via the panel
        assert frames[-1].active_voxels > 0

    def test_stimulus_edit_changes_reference(self):
        panel = ControlPanel(n_frames=30)
        ref_a = panel.reference()
        panel.set_stimulus_blocks(period_on=5, period_off=5)
        ref_b = panel.reference()
        assert not np.allclose(ref_a, ref_b)


class TestMetacomputerSessionWithTrace:
    """core + metampi + trace together: a traced session on the real
    testbed topology, with island-aware behaviour visible in the trace."""

    def test_traced_cross_site_session(self):
        tracer = Tracer()
        meta = Metacomputer()
        mc = meta.session(
            {"Cray T3E-600": 2, "IBM SP2": 2}, tracer=tracer,
            wallclock_timeout=60,
        )

        def main(comm):
            with tracer.region(comm, "halo"):
                peer = (comm.rank + 2) % 4  # cross-site partner
                comm.sendrecv(
                    np.zeros(5000).tobytes(), dest=peer, source=peer
                )
            comm.barrier()
            return comm.wtime()

        results = mc.run(main)
        clocks = [r.value for r in results]
        assert len(set(np.round(clocks, 12))) == 1  # barrier aligned

        tl = tracer.timeline()
        text = render_timeline(tl, width=40)
        assert "rank 3" in text
        mat = message_matrix(tl)
        # cross-site traffic dominates: ranks 0<->2 and 1<->3
        assert mat.bytes[0, 2] > 0 and mat.bytes[2, 0] > 0

    def test_scheduler_then_session(self):
        """Co-allocate the fMRI resource set, then run on the granted
        machines — the clinical-operations flow the conclusions call for."""
        from repro.core import AllocationRequest, CoAllocator

        alloc = CoAllocator({"Cray T3E-600": 512, "SGI Onyx 2 (GMD)": 12,
                             "scanner": 1})
        grant = alloc.submit(
            AllocationRequest(
                "fmri", {"Cray T3E-600": 256, "SGI Onyx 2 (GMD)": 12,
                         "scanner": 1},
                duration=1800,
            )
        )
        assert grant.start == 0.0
        meta = Metacomputer()
        mc = meta.session({"Cray T3E-600": 2, "SGI Onyx 2 (GMD)": 1},
                          wallclock_timeout=60)
        results = mc.run(lambda comm: comm.allreduce(1))
        assert all(r.value == 3 for r in results)


class TestSessionAgainstPipelineModel:
    """FireSession (real data) and FirePipeline (pure timing) must agree
    on the timing they both model."""

    def test_delays_consistent(self):
        ph = HeadPhantom()
        sc = SimulatedScanner(ph, ScannerConfig(n_frames=20, tr=3.0))
        session = FireSession(sc, pes=256, flags=ModuleFlags())
        res = session.run(6)
        pipeline = FirePipeline(
            PipelineConfig(
                pes=256, n_images=6, repetition_time=3.0,
                modules=ModuleFlags().t3e_modules(),
            )
        ).run()
        assert res.mean_delay == pytest.approx(
            pipeline.mean_total_delay, abs=0.05
        )
