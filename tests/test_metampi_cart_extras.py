"""Tests for Cartesian topologies, exscan/reduce_scatter, and the
cell-exact ATM validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.machines import CRAY_T3E_600
from repro.metampi import MetaMPI, SUM, MAX
from repro.metampi.cart import cart_create, dims_create
from repro.netsim.atm import aal5_wire_bytes
from repro.netsim.cellsim import (
    CellLink,
    interleaved_vc_transfer,
    transfer_time_cell_exact,
)
from repro.sim import Environment


def run(fn, ranks=4, timeout=30):
    mc = MetaMPI(wallclock_timeout=timeout)
    mc.add_machine(CRAY_T3E_600, ranks=ranks)
    return [r.value for r in mc.run(fn)]


class TestDimsCreate:
    def test_perfect_square(self):
        assert dims_create(16, 2) == [4, 4]

    def test_prime_count(self):
        assert dims_create(7, 2) == [7, 1]

    def test_three_dims(self):
        dims = dims_create(24, 3)
        assert np.prod(dims) == 24
        assert dims == sorted(dims, reverse=True)
        assert max(dims) - min(dims) <= 2

    def test_single_dim(self):
        assert dims_create(12, 1) == [12]

    def test_validation(self):
        with pytest.raises(ValueError):
            dims_create(0, 2)

    @given(n=st.integers(1, 256), d=st.integers(1, 4))
    def test_product_property(self, n, d):
        dims = dims_create(n, d)
        assert len(dims) == d
        assert int(np.prod(dims)) == n


class TestCartComm:
    def test_coords_roundtrip(self):
        def main(comm):
            cart = cart_create(comm, dims=(2, 3))
            me = cart.coords()
            return (me, cart.rank_at(me) == comm.rank)

        vals = run(main, ranks=6)
        assert all(ok for _, ok in vals)
        assert vals[0][0] == (0, 0)
        assert vals[5][0] == (1, 2)

    def test_dims_mismatch_rejected(self):
        def main(comm):
            cart_create(comm, dims=(3, 3))

        from repro.metampi import RankFailed

        with pytest.raises(RankFailed):
            run(main, ranks=4)

    def test_shift_nonperiodic_boundaries(self):
        def main(comm):
            cart = cart_create(comm, dims=(4,), periods=(False,))
            return cart.shift(0)

        vals = run(main, ranks=4)
        assert vals[0] == (None, 1)
        assert vals[1] == (0, 2)
        assert vals[3] == (2, None)

    def test_shift_periodic_wraps(self):
        def main(comm):
            cart = cart_create(comm, dims=(4,), periods=(True,))
            return cart.shift(0)

        vals = run(main, ranks=4)
        assert vals[0] == (3, 1)
        assert vals[3] == (2, 0)

    def test_halo_exchange_ring(self):
        def main(comm):
            cart = cart_create(comm, dims=(4,), periods=(True,))
            down, up = cart.halo_exchange(
                0, send_down=f"d{comm.rank}", send_up=f"u{comm.rank}"
            )
            return (down, up)

        vals = run(main, ranks=4)
        # rank 1 receives rank 0's up-message and rank 2's down-message
        assert vals[1] == ("u0", "d2")

    def test_halo_exchange_open_boundary(self):
        def main(comm):
            cart = cart_create(comm, dims=(4,), periods=(False,))
            return cart.halo_exchange(0, send_down=comm.rank, send_up=comm.rank)

        vals = run(main, ranks=4)
        assert vals[0][0] is None  # nothing below rank 0
        assert vals[3][1] is None  # nothing above rank 3

    def test_2d_decomposition_neighbor_sum(self):
        """Classic stencil pattern: sum over the four neighbors."""
        def main(comm):
            cart = cart_create(comm, dims=(2, 2), periods=(True, True))
            total = 0
            for dim in (0, 1):
                down, up = cart.halo_exchange(
                    0 if dim == 0 else 1,
                    send_down=comm.rank, send_up=comm.rank, tag=90 + 10 * dim,
                )
                total += down + up
            return total

        vals = run(main, ranks=4)
        # 2x2 periodic: each neighbor pair contributes both directions
        assert all(isinstance(v, int) for v in vals)
        assert sum(vals) == 2 * 2 * sum(range(4))


class TestExtraCollectives:
    def test_exscan(self):
        def main(comm):
            return comm.exscan(comm.rank + 1, op=SUM)

        vals = run(main, ranks=4)
        assert vals == [None, 1, 3, 6]

    def test_reduce_scatter(self):
        def main(comm):
            values = [10 * comm.rank + d for d in range(comm.size)]
            return comm.reduce_scatter(values, op=SUM)

        vals = run(main, ranks=3)
        # item d = sum over ranks of (10*r + d) = 30 + 3d
        assert vals == [30, 33, 36]

    def test_reduce_scatter_max(self):
        def main(comm):
            values = [comm.rank * (d + 1) for d in range(comm.size)]
            return comm.reduce_scatter(values, op=MAX)

        vals = run(main, ranks=3)
        assert vals == [2, 4, 6]

    def test_reduce_scatter_wrong_length(self):
        from repro.metampi import RankFailed

        def main(comm):
            comm.reduce_scatter([1], op=SUM)

        with pytest.raises(RankFailed):
            run(main, ranks=3)


class TestCellExact:
    def test_matches_packet_model(self):
        """Last-cell arrival equals the packet model's wire time."""
        for payload in (40, 1000, 9188, 65552):
            rate = 149.76e6
            got = transfer_time_cell_exact(payload, rate)
            expected = aal5_wire_bytes(payload) * 8 / rate
            assert got == pytest.approx(expected, rel=1e-9)

    def test_propagation_added_once(self):
        rate = 149.76e6
        base = transfer_time_cell_exact(1000, rate)
        with_prop = transfer_time_cell_exact(1000, rate, propagation=1e-3)
        assert with_prop == pytest.approx(base + 1e-3)

    def test_reassembly_of_stream(self):
        env = Environment()
        link = CellLink(env, rate=149.76e6)
        from repro.netsim.atm import AAL5Frame

        for pdu in range(3):
            link.send_frame(AAL5Frame(payload_bytes=500, pdu_id=pdu))
        env.run()
        assert sorted(link.pdu_complete_times) == [0, 1, 2]
        assert link.reassembler.errors == 0

    def test_interleaving_delays_every_vc(self):
        """Two PDUs sharing the link each finish later than alone."""
        rate = 149.76e6
        alone = transfer_time_cell_exact(4800, rate)
        times = interleaved_vc_transfer([4800, 4800], rate)
        assert len(times) == 2
        for t in times.values():
            assert t > alone
        # Total occupancy conserved: last completion = sum of both.
        assert max(times.values()) == pytest.approx(2 * alone, rel=1e-9)

    def test_invalid_rate(self):
        env = Environment()
        with pytest.raises(ValueError):
            CellLink(env, rate=0)
