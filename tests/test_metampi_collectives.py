"""Tests for metampi collectives (object and buffer) and communicator
management, including the topology-aware (hierarchical) algorithms."""

import numpy as np
import pytest

from repro.machines import CRAY_T3E_600, CRAY_T90, IBM_SP2, SGI_ONYX2_GMD
from repro.metampi import MAX, MIN, MetaMPI, PROD, SUM

TWO_MACHINES = ((CRAY_T3E_600, 3), (IBM_SP2, 2))


def run(fn, layout=TWO_MACHINES, hierarchical=True, timeout=30):
    mc = MetaMPI(wallclock_timeout=timeout, hierarchical=hierarchical)
    for spec, n in layout:
        mc.add_machine(spec, ranks=n)
    results = mc.run(fn)
    return mc, [r.value for r in results]


class TestObjectCollectives:
    @pytest.mark.parametrize("root", [0, 2, 4])
    def test_bcast_from_any_root(self, root):
        def main(comm, root=root):
            obj = {"data": [1, 2, 3]} if comm.rank == root else None
            return comm.bcast(obj, root=root)

        _, vals = run(main)
        assert all(v == {"data": [1, 2, 3]} for v in vals)

    @pytest.mark.parametrize("root", [0, 3])
    def test_gather(self, root):
        def main(comm, root=root):
            return comm.gather(comm.rank ** 2, root=root)

        _, vals = run(main)
        for r, v in enumerate(vals):
            if r == root:
                assert v == [0, 1, 4, 9, 16]
            else:
                assert v is None

    def test_scatter(self):
        def main(comm):
            values = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        _, vals = run(main)
        assert vals == [f"item{i}" for i in range(5)]

    def test_scatter_wrong_length_rejected(self):
        from repro.metampi import RankFailed

        def main(comm):
            values = [1] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        with pytest.raises(RankFailed):
            run(main)

    def test_allgather(self):
        def main(comm):
            return comm.allgather(comm.rank * 10)

        _, vals = run(main)
        assert all(v == [0, 10, 20, 30, 40] for v in vals)

    @pytest.mark.parametrize(
        "op,expect", [(SUM, 10), (MAX, 4), (MIN, 0), (PROD, 0)]
    )
    def test_reduce_ops(self, op, expect):
        def main(comm, op=op):
            return comm.reduce(comm.rank, op=op, root=0)

        _, vals = run(main)
        assert vals[0] == expect
        assert all(v is None for v in vals[1:])

    def test_allreduce(self):
        def main(comm):
            return comm.allreduce(comm.rank + 1, op=SUM)

        _, vals = run(main)
        assert all(v == 15 for v in vals)

    def test_alltoall(self):
        def main(comm):
            out = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
            return out

        _, vals = run(main)
        for r, v in enumerate(vals):
            assert v == [f"{s}->{r}" for s in range(5)]

    def test_scan_inclusive_prefix(self):
        def main(comm):
            return comm.scan(comm.rank + 1, op=SUM)

        _, vals = run(main)
        assert vals == [1, 3, 6, 10, 15]

    def test_barrier_aligns_clocks(self):
        def main(comm):
            comm.advance(0.1 * comm.rank)
            comm.barrier()
            return comm.wtime()

        _, vals = run(main)
        assert len(set(vals)) == 1
        assert vals[0] >= 0.4

    def test_consecutive_collectives_do_not_cross_match(self):
        def main(comm):
            a = comm.allreduce(1, op=SUM)
            b = comm.allreduce(comm.rank, op=MAX)
            c = comm.bcast("third" if comm.rank == 0 else None, root=0)
            return (a, b, c)

        _, vals = run(main)
        assert all(v == (5, 4, "third") for v in vals)


class TestBufferCollectives:
    def test_Bcast(self):
        def main(comm):
            buf = np.arange(6, dtype=np.float64) if comm.rank == 0 else np.zeros(6)
            comm.Bcast(buf, root=0)
            return buf.tolist()

        _, vals = run(main)
        assert all(v == [0, 1, 2, 3, 4, 5] for v in vals)

    def test_Reduce_sum(self):
        def main(comm):
            send = np.full(4, float(comm.rank))
            recv = np.zeros(4) if comm.rank == 0 else None
            comm.Reduce(send, recv, op=SUM, root=0)
            return recv.tolist() if comm.rank == 0 else None

        _, vals = run(main)
        assert vals[0] == [10.0] * 4

    def test_Allreduce(self):
        def main(comm):
            send = np.array([comm.rank, -comm.rank], dtype=np.float64)
            recv = np.zeros(2)
            comm.Allreduce(send, recv, op=SUM)
            return recv.tolist()

        _, vals = run(main)
        assert all(v == [10.0, -10.0] for v in vals)

    def test_Gather(self):
        def main(comm):
            send = np.full(3, float(comm.rank))
            recv = np.zeros((comm.size, 3)) if comm.rank == 0 else None
            comm.Gather(send, recv, root=0)
            return recv[:, 0].tolist() if comm.rank == 0 else None

        _, vals = run(main)
        assert vals[0] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_Scatter(self):
        def main(comm):
            send = None
            if comm.rank == 0:
                send = np.arange(comm.size * 2, dtype=np.float64).reshape(
                    comm.size, 2
                )
            recv = np.zeros(2)
            comm.Scatter(send, recv, root=0)
            return recv.tolist()

        _, vals = run(main)
        assert vals == [[0, 1], [2, 3], [4, 5], [6, 7], [8, 9]]

    def test_Allgather(self):
        def main(comm):
            send = np.array([float(comm.rank)])
            recv = np.zeros((comm.size, 1))
            comm.Allgather(send, recv)
            return recv.ravel().tolist()

        _, vals = run(main)
        assert all(v == [0, 1, 2, 3, 4] for v in vals)

    def test_Reduce_missing_recvbuf_at_root(self):
        from repro.metampi import RankFailed

        def main(comm):
            comm.Reduce(np.ones(2), None, op=SUM, root=0)

        with pytest.raises(RankFailed):
            run(main)


class TestHierarchicalAwareness:
    def test_results_identical_flat_vs_hierarchical(self):
        def main(comm):
            s = comm.allreduce(comm.rank, op=SUM)
            g = comm.gather(comm.rank, root=0)
            return (s, g)

        _, flat = run(main, hierarchical=False)
        _, hier = run(main, hierarchical=True)
        assert flat == hier

    def test_islands_structure(self):
        def main(comm):
            return sorted(tuple(sorted(i)) for i in comm.islands())

        _, vals = run(main)
        assert vals[0] == [(0, 1, 2), (3, 4)]

    def test_hierarchical_bcast_faster_over_wan(self):
        """The point of topology-aware collectives: fewer WAN crossings
        means lower virtual elapsed time for the same bcast."""
        layout = ((CRAY_T3E_600, 6), (IBM_SP2, 6))
        payload = bytes(1_000_000)

        def main(comm):
            comm.bcast(payload if comm.rank == 0 else None, root=0)
            comm.barrier()

        mc_flat, _ = run(main, layout=layout, hierarchical=False)
        mc_hier, _ = run(main, layout=layout, hierarchical=True)
        assert mc_hier.elapsed < mc_flat.elapsed

    def test_four_machine_metacomputer(self):
        layout = (
            (CRAY_T3E_600, 2), (CRAY_T90, 2), (IBM_SP2, 2), (SGI_ONYX2_GMD, 2),
        )

        def main(comm):
            assert len(comm.islands()) == 4
            return comm.allreduce(1, op=SUM)

        _, vals = run(main, layout=layout)
        assert all(v == 8 for v in vals)


class TestCommManagement:
    def test_dup_has_separate_tag_space(self):
        def main(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.send("on-comm", 1, tag=5)
                dup.send("on-dup", 1, tag=5)
                return None
            if comm.rank == 1:
                # Receive from the dup *first*: must not match comm's message.
                a = dup.recv(source=0, tag=5)
                b = comm.recv(source=0, tag=5)
                return (a, b)
            return None

        _, vals = run(main)
        assert vals[1] == ("on-dup", "on-comm")

    def test_split_by_machine(self):
        def main(comm):
            color = 0 if comm.rank < 3 else 1
            sub = comm.split(color=color, key=comm.rank)
            return (sub.size, sub.rank, sub.allreduce(1, op=SUM))

        _, vals = run(main)
        assert vals[0] == (3, 0, 3)
        assert vals[3] == (2, 0, 2)
        assert vals[4] == (2, 1, 2)

    def test_split_with_none_color(self):
        def main(comm):
            color = None if comm.rank == 4 else 0
            sub = comm.split(color=color)
            if sub is None:
                return "excluded"
            return sub.size

        _, vals = run(main)
        assert vals[4] == "excluded"
        assert vals[0] == 4

    def test_split_key_reorders(self):
        def main(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        _, vals = run(main)
        # key=-rank: highest old rank becomes rank 0
        assert vals == [4, 3, 2, 1, 0]
