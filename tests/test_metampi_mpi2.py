"""Tests for the MPI-2 features the paper calls out: dynamic process
creation, attachment via ports, and language interoperability."""

import numpy as np
import pytest

from repro.machines import CRAY_T3E_600, SGI_ONYX2_GMD
from repro.metampi import (
    FortranArray,
    MetaMPI,
    as_c_layout,
    as_fortran_layout,
)
from repro.metampi.interop import dtype_for


def run(fn, layout=((CRAY_T3E_600, 2),), timeout=20):
    mc = MetaMPI(wallclock_timeout=timeout)
    for spec, n in layout:
        mc.add_machine(spec, ranks=n)
    results = mc.run(fn)
    return mc, results


class TestSpawn:
    def test_spawn_runs_children_and_returns_intercomm(self):
        def child(comm):
            parent = comm.Get_parent()
            assert parent is not None
            x = parent.recv(source=0, tag=1)
            parent.send(x * 2, 0, tag=2)
            return ("child", comm.rank, comm.size)

        def main(comm):
            inter = comm.Spawn(child, maxprocs=3)
            assert inter.remote_size == 3
            if comm.rank == 0:
                for i in range(3):
                    inter.send(i + 10, i, tag=1)
                return sorted(inter.recv(source=i, tag=2) for i in range(3))
            return None

        _, results = run(main)
        vals = [r.value for r in results]
        assert vals[0] == [20, 22, 24]
        # children ran with their own world of size 3
        assert ("child", 0, 3) in vals and ("child", 2, 3) in vals

    def test_spawned_children_communicate_among_themselves(self):
        def child(comm):
            total = comm.allreduce(comm.rank, )
            return total

        def main(comm):
            comm.Spawn(child, maxprocs=4)
            return "parent-done"

        _, results = run(main, layout=((CRAY_T3E_600, 1),))
        child_vals = [r.value for r in results[1:]]
        assert child_vals == [6, 6, 6, 6]

    def test_spawn_on_other_machine(self):
        def child(comm):
            return comm.runtime.current().machine.name

        def main(comm):
            comm.Spawn(child, maxprocs=1, machine=SGI_ONYX2_GMD)
            return None

        _, results = run(main, layout=((CRAY_T3E_600, 1),))
        assert results[1].value == "SGI Onyx 2 (GMD)"

    def test_spawn_inherits_parent_clock(self):
        def child(comm):
            return comm.wtime()

        def main(comm):
            comm.advance(5.0)
            comm.Spawn(child, maxprocs=1)
            return None

        _, results = run(main, layout=((CRAY_T3E_600, 1),))
        assert results[1].value >= 5.0

    def test_parent_comm_none_for_world_ranks(self):
        def main(comm):
            return comm.Get_parent()

        _, results = run(main)
        assert all(r.value is None for r in results)


class TestPorts:
    def test_accept_connect_exchange(self):
        """The paper's attachment use case: a running simulation accepts a
        visualization client at runtime."""

        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            if comm.rank % 2 == 0:  # server side
                port = sub.Open_port()
                sub.Publish_name("rt-viz", port)
                inter = sub.Accept(port)
                frame = inter.recv(source=0, tag=0)
                inter.send(f"rendered-{frame}", 0, tag=1)
                return "server"
            port = sub.Lookup_name("rt-viz")
            inter = sub.Connect(port)
            inter.send("frame-7", 0, tag=0)
            return inter.recv(source=0, tag=1)

        _, results = run(main, layout=((CRAY_T3E_600, 1), (SGI_ONYX2_GMD, 1)))
        vals = [r.value for r in results]
        assert vals[0] == "server"
        assert vals[1] == "rendered-frame-7"

    def test_intercomm_merge(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            if comm.rank % 2 == 0:
                port = sub.Open_port()
                sub.Publish_name("merge-test", port)
                inter = sub.Accept(port)
                merged = inter.Merge(high=False)
            else:
                inter = sub.Connect(sub.Lookup_name("merge-test"))
                merged = inter.Merge(high=True)
            return (merged.size, merged.rank, merged.allreduce(1))

        _, results = run(main, layout=((CRAY_T3E_600, 1), (SGI_ONYX2_GMD, 1)))
        vals = [r.value for r in results]
        assert vals[0] == (2, 0, 2)
        assert vals[1] == (2, 1, 2)

    def test_lookup_unpublished_times_out(self):
        from repro.metampi import MetaMpiError, RankFailed

        def main(comm):
            comm.Lookup_name("never-published")

        mc = MetaMPI(wallclock_timeout=0.2)
        mc.add_machine(CRAY_T3E_600, ranks=1)
        with pytest.raises((RankFailed, MetaMpiError)):
            mc.run(main)


class TestInterop:
    def test_fortran_type_mapping(self):
        assert dtype_for("fortran", "REAL*8") == np.float64
        assert dtype_for("fortran", "INTEGER") == np.int32
        assert dtype_for("c", "double") == np.float64

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError):
            dtype_for("fortran", "QUATERNION*32")

    def test_layout_conversions(self):
        a = np.arange(6).reshape(2, 3)
        f = as_fortran_layout(a)
        c = as_c_layout(f)
        assert f.flags["F_CONTIGUOUS"]
        assert c.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(a, c)

    def test_fortran_array_one_based_access(self):
        fa = FortranArray(np.arange(12).reshape(3, 4))
        assert fa.get(1, 1) == 0
        assert fa.get(3, 4) == 11
        fa.set(2, 2, -5)
        assert fa.get(2, 2) == -5

    def test_fortran_array_column_contiguous(self):
        fa = FortranArray(np.arange(12, dtype=np.float64).reshape(3, 4))
        col = fa.column(2)
        np.testing.assert_array_equal(col, [1, 5, 9])

    def test_cross_language_roundtrip(self):
        """A Fortran-side field crosses to C and back unchanged."""
        rng = np.random.default_rng(3)
        field = rng.normal(size=(4, 5, 6))
        fa = FortranArray(field)
        c_side = fa.to_c()
        back = FortranArray.from_c(c_side)
        np.testing.assert_array_equal(back.data, field)

    def test_interop_across_ranks(self):
        """Fortran-layout field sent from a 'Fortran' rank is usable on a
        'C' rank after layout conversion (the coupled-application path)."""

        def main(comm):
            if comm.rank == 0:
                field = as_fortran_layout(
                    np.arange(24, dtype=np.float64).reshape(4, 6)
                )
                comm.Send(field, 1)
                return None
            buf = np.empty((4, 6))
            comm.Recv(buf, source=0)
            return float(as_c_layout(buf)[3, 5])

        _, results = run(main)
        assert results[1].value == 23.0
