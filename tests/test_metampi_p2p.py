"""Tests for metampi point-to-point messaging, requests, and virtual time."""

import numpy as np
import pytest

from repro.machines import CRAY_T3E_600, IBM_SP2
from repro.metampi import (
    ANY_SOURCE,
    ANY_TAG,
    MetaMPI,
    MetaMpiError,
    RankFailed,
    Status,
)
from repro.metampi.errors import DeadlockSuspected, InvalidTag


def run(fn, layout=((CRAY_T3E_600, 2),), timeout=20, **kw):
    mc = MetaMPI(wallclock_timeout=timeout, **kw)
    for spec, n in layout:
        mc.add_machine(spec, ranks=n)
    results = mc.run(fn)
    return mc, [r.value for r in results]


class TestSendRecv:
    def test_object_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        _, vals = run(main)
        assert vals[1] == {"a": 7, "b": 3.14}

    def test_copy_on_send_isolation(self):
        """Mutating after send must not affect the receiver."""
        def main(comm):
            if comm.rank == 0:
                obj = [1, 2, 3]
                comm.send(obj, 1)
                obj.append(99)
                return None
            return comm.recv(source=0)

        _, vals = run(main)
        assert vals[1] == [1, 2, 3]

    def test_any_source_any_tag(self):
        def main(comm):
            if comm.rank == 0:
                st = Status()
                got = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=st)
                return (got, st.source, st.tag)
            comm.send("from-1", 0, tag=42)
            return None

        _, vals = run(main)
        assert vals[0] == ("from-1", 1, 42)

    def test_status_count_is_payload_bytes(self):
        def main(comm):
            if comm.rank == 0:
                st = Status()
                comm.Recv(np.empty(100), source=1, status=st)
                return st.count
            comm.Send(np.zeros(100), 0)
            return None

        _, vals = run(main)
        assert vals[0] == 800  # 100 float64

    def test_non_overtaking_same_source_tag(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, 1, tag=7)
                return None
            return [comm.recv(source=0, tag=7) for _ in range(5)]

        _, vals = run(main)
        assert vals[1] == [0, 1, 2, 3, 4]

    def test_tag_selectivity(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        _, vals = run(main)
        assert vals[1] == ("a", "b")

    def test_negative_user_tag_rejected(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=-5)
            return None

        with pytest.raises(RankFailed) as exc:
            run(main)
        assert isinstance(exc.value.original, InvalidTag)

    def test_sendrecv(self):
        def main(comm):
            other = 1 - comm.rank
            return comm.sendrecv(comm.rank, dest=other, source=other)

        _, vals = run(main)
        assert vals == [1, 0]

    def test_dest_out_of_range(self):
        def main(comm):
            comm.send(1, dest=99)

        with pytest.raises(RankFailed):
            run(main)


class TestBufferOps:
    def test_buffer_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype=np.float64), 1)
                return None
            buf = np.empty(10)
            comm.Recv(buf, source=0)
            return buf.tolist()

        _, vals = run(main)
        assert vals[1] == list(range(10))

    def test_buffer_copy_on_send(self):
        def main(comm):
            if comm.rank == 0:
                arr = np.ones(5)
                comm.Send(arr, 1)
                arr[:] = -1
                return None
            buf = np.empty(5)
            comm.Recv(buf, source=0)
            return buf.sum()

        _, vals = run(main)
        assert vals[1] == 5.0

    def test_size_mismatch_raises(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(10), 1)
                return None
            comm.Recv(np.empty(5), source=0)

        with pytest.raises(RankFailed):
            run(main)

    def test_shape_agnostic_copy(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(12).reshape(3, 4), 1)
                return None
            buf = np.empty((4, 3), dtype=np.int64)
            comm.Recv(buf, source=0)
            return int(buf[3, 2])

        _, vals = run(main)
        assert vals[1] == 11


class TestRequests:
    def test_isend_irecv(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2], 1, tag=3)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=3)
            return req.wait()

        _, vals = run(main)
        assert vals[1] == [1, 2]

    def test_irecv_test_polling(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=9)
                flag, val = req.test()
                results = [flag]
                comm.send("go", 1, tag=8)
                got = req.wait()
                results.append(got)
                return results
            comm.recv(source=0, tag=8)
            comm.send("answer", 0, tag=9)
            return None

        _, vals = run(main)
        assert vals[0][0] is False
        assert vals[0][1] == "answer"

    def test_waitall(self):
        from repro.metampi.request import Request

        def main(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.send(i * 10, 1, tag=i)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(3)]
            return Request.waitall(reqs)

        _, vals = run(main)
        assert vals[1] == [0, 10, 20]

    def test_irecv_buffer(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.full(4, 2.5), 1)
                return None
            buf = np.zeros(4)
            req = comm.Irecv(buf, source=0)
            req.wait()
            return buf.sum()

        _, vals = run(main)
        assert vals[1] == 10.0


class TestVirtualTime:
    def test_advance_accumulates(self):
        def main(comm):
            comm.advance(1.5)
            comm.advance(0.5)
            return comm.wtime()

        _, vals = run(main, layout=((CRAY_T3E_600, 1),))
        assert vals[0] == pytest.approx(2.0)

    def test_advance_negative_rejected(self):
        def main(comm):
            comm.advance(-1)

        with pytest.raises(RankFailed):
            run(main, layout=((CRAY_T3E_600, 1),))

    def test_recv_clock_respects_arrival(self):
        """Receiver idling at t=0 jumps to the message arrival time."""
        def main(comm):
            if comm.rank == 0:
                comm.advance(1.0)
                comm.send("x", 1)
                return None
            comm.recv(source=0)
            return comm.wtime()

        _, vals = run(main)
        assert vals[1] > 1.0

    def test_intra_machine_faster_than_wan(self):
        """The metacomputing-aware property: local latency << WAN latency."""
        def main(comm):
            if comm.rank == 0:
                comm.send(b"x" * 1000, 1)   # same machine
                comm.send(b"x" * 1000, 2)   # across the WAN
                return None
            comm.recv(source=0)
            return comm.wtime()

        _, vals = run(main, layout=((CRAY_T3E_600, 2), (IBM_SP2, 1)))
        local_t, wan_t = vals[1], vals[2]
        assert wan_t > 10 * local_t

    def test_elapsed_is_max_clock(self):
        def main(comm):
            comm.advance(0.1 * (comm.rank + 1))

        mc, _ = run(main, layout=((CRAY_T3E_600, 3),))
        assert mc.elapsed == pytest.approx(0.3)

    def test_message_size_affects_transit(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(10), 1)
                return None
            t0 = comm.wtime()
            buf = np.empty(10)
            comm.Recv(buf, source=0)
            small = comm.wtime() - t0
            return small

        def main_big(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1_000_000), 1)
                return None
            t0 = comm.wtime()
            buf = np.empty(1_000_000)
            comm.Recv(buf, source=0)
            return comm.wtime() - t0

        _, small = run(main)
        _, big = run(main_big)
        assert big[1] > 10 * small[1]


class TestFailures:
    def test_rank_exception_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("app bug")

        with pytest.raises(RankFailed) as exc:
            run(main)
        assert exc.value.rank == 1
        assert isinstance(exc.value.original, ValueError)

    def test_deadlock_watchdog(self):
        def main(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=1)  # never sent

        with pytest.raises((RankFailed, DeadlockSuspected)):
            run(main, timeout=0.3)

    def test_outside_rank_thread_rejected(self):
        mc = MetaMPI()
        mc.add_machine(CRAY_T3E_600, ranks=1)
        with pytest.raises(MetaMpiError):
            mc.runtime.current()

    def test_empty_metacomputer_rejected(self):
        mc = MetaMPI()
        with pytest.raises(RuntimeError):
            mc.run(lambda comm: None)

    def test_zero_ranks_rejected(self):
        mc = MetaMPI()
        with pytest.raises(ValueError):
            mc.add_machine(CRAY_T3E_600, ranks=0)
