"""Tests for the selectable collective strategies: cross-strategy result
agreement (including non-commutative ops), the barrier clock contract,
tree edge cases, dtype-safe buffer receives, and the per-strategy WAN
traffic accounting that the hierarchical algorithms are judged on."""

import numpy as np
import pytest

from repro.machines import CRAY_T3E_600, CRAY_T90, IBM_SP2, SGI_ONYX2_GMD
from repro.metampi import (
    STRATEGIES,
    MetaMPI,
    MetaMpiError,
    Op,
    RankFailed,
    SUM,
    create_strategy,
)
from repro.metampi.comm import Intracomm
from repro.telemetry import MetricsRegistry, instrument_runtime

TWO_MACHINES = ((CRAY_T3E_600, 3), (IBM_SP2, 2))
STRATS = sorted(STRATEGIES)

#: Non-commutative ops: string concatenation and matrix multiplication.
CONCAT = Op("concat", lambda a, b: a + b, np.add, commutative=False)
MATMUL = Op("matmul", lambda a, b: a @ b, np.matmul, commutative=False)


def run(fn, layout=TWO_MACHINES, strategy="hierarchical", timeout=30):
    mc = MetaMPI(wallclock_timeout=timeout, strategy=strategy)
    for spec, n in layout:
        mc.add_machine(spec, ranks=n)
    results = mc.run(fn)
    return mc, [r.value for r in results]


def layout_for(n):
    """n ranks split across two machines (all on one when n == 1)."""
    if n == 1:
        return ((CRAY_T3E_600, 1),)
    a = (n + 1) // 2
    return ((CRAY_T3E_600, a), (IBM_SP2, n - a))


def make_world(layout, strategy="hierarchical"):
    """An Intracomm over a fresh layout, without starting rank threads
    (enough for topology-only inspection like ``_tree``)."""
    mc = MetaMPI(strategy=strategy)
    for spec, n in layout:
        mc.add_machine(spec, ranks=n)
    runtime = mc.runtime
    return Intracomm(
        runtime,
        runtime.next_comm_id(),
        [c.world_rank for c in runtime.ranks],
        strategy=strategy,
    )


def assert_valid_tree(parent, children, n, root):
    """Every rank reached exactly once; parent/children maps agree."""
    assert root not in parent
    assert set(parent) == set(range(n)) - {root}
    reached = set()
    stack = [root]
    while stack:
        r = stack.pop()
        assert r not in reached, f"rank {r} reached twice"
        reached.add(r)
        for c in children[r]:
            assert parent[c] == r
            stack.append(c)
    assert reached == set(range(n))


class TestStrategySelection:
    def test_create_strategy_unknown_name(self):
        with pytest.raises(MetaMpiError, match="unknown collective strategy"):
            create_strategy("bogus")

    def test_instances_are_shared(self):
        assert create_strategy("ring") is create_strategy("ring")

    @pytest.mark.parametrize("name", STRATS)
    def test_world_carries_named_strategy(self, name):
        def main(comm):
            return comm.strategy.name

        _, vals = run(main, strategy=name)
        assert vals == [name] * 5

    def test_legacy_hierarchical_flag_still_selects(self):
        mc = MetaMPI(hierarchical=False)
        mc.add_machine(CRAY_T3E_600, ranks=2)
        assert mc.hierarchical is False
        results = mc.run(lambda comm: comm.strategy.name)
        assert [r.value for r in results] == ["flat", "flat"]

    def test_subcommunicators_inherit_strategy(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            dup = comm.dup()
            return (sub.strategy.name, dup.strategy.name)

        _, vals = run(main, strategy="ring")
        assert all(v == ("ring", "ring") for v in vals)


class TestCrossStrategyAgreement:
    @pytest.mark.parametrize("strategy", STRATS)
    def test_core_collectives(self, strategy):
        def main(comm):
            s = comm.allreduce(comm.rank + 1, op=SUM)
            g = comm.gather(comm.rank ** 2, root=1)
            ag = comm.allgather(comm.rank * 10)
            a2a = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
            b = comm.bcast("payload" if comm.rank == 2 else None, root=2)
            rs = comm.reduce_scatter(
                [comm.rank * comm.size + i for i in range(comm.size)], op=SUM
            )
            return (s, g, ag, a2a, b, rs)

        _, vals = run(main, strategy=strategy)
        for r, (s, g, ag, a2a, b, rs) in enumerate(vals):
            assert s == 15
            assert g == ([0, 1, 4, 9, 16] if r == 1 else None)
            assert ag == [0, 10, 20, 30, 40]
            assert a2a == [f"{src}->{r}" for src in range(5)]
            assert b == "payload"
            assert rs == sum(q * 5 + r for q in range(5))

    @pytest.mark.parametrize("strategy", STRATS)
    def test_large_buffer_Allreduce(self, strategy):
        def main(comm):
            send = np.arange(64, dtype=np.float64) * (comm.rank + 1)
            recv = np.zeros(64)
            comm.Allreduce(send, recv, op=SUM)
            return recv.tolist()

        _, vals = run(main, strategy=strategy)
        expect = (np.arange(64, dtype=np.float64) * 15).tolist()
        assert all(v == expect for v in vals)

    @pytest.mark.parametrize("strategy", STRATS)
    def test_object_allreduce_on_arrays(self, strategy):
        """The ring fast path also serves the lowercase API when handed
        an ndarray; results must match the tree strategies exactly."""

        def main(comm):
            out = comm.allreduce(
                np.full(16, comm.rank + 1, dtype=np.int64), op=SUM
            )
            return np.asarray(out).tolist()

        _, vals = run(main, strategy=strategy)
        assert all(v == [15] * 16 for v in vals)


class TestNonCommutativeOps:
    @pytest.mark.parametrize("strategy", STRATS)
    @pytest.mark.parametrize("n", range(1, 10))
    def test_concat_fold_is_rank_ordered(self, strategy, n):
        def main(comm):
            word = f"[{comm.rank}]"
            r = comm.reduce(word, op=CONCAT, root=0)
            a = comm.allreduce(word, op=CONCAT)
            s = comm.scan(word, op=CONCAT)
            return (r, a, s)

        _, vals = run(main, layout=layout_for(n), strategy=strategy)
        expect = "".join(f"[{i}]" for i in range(n))
        assert vals[0][0] == expect
        for i, (r, a, s) in enumerate(vals):
            if i > 0:
                assert r is None
            assert a == expect
            assert s == "".join(f"[{j}]" for j in range(i + 1))

    @pytest.mark.parametrize("strategy", STRATS)
    def test_matmul_object_path(self, strategy):
        mats = [
            np.array([[i + 1, i], [1, i + 2]], dtype=np.int64) for i in range(5)
        ]

        def main(comm):
            out = comm.allreduce(mats[comm.rank], op=MATMUL)
            return np.asarray(out).tolist()

        _, vals = run(main, strategy=strategy)
        expect = mats[0] @ mats[1] @ mats[2] @ mats[3] @ mats[4]
        assert all(v == expect.tolist() for v in vals)

    @pytest.mark.parametrize("strategy", STRATS)
    def test_matmul_buffer_Reduce(self, strategy):
        mats = [
            np.array([[i + 1, i], [1, i + 2]], dtype=np.float64)
            for i in range(5)
        ]

        def main(comm):
            recv = np.zeros((2, 2)) if comm.rank == 0 else None
            comm.Reduce(mats[comm.rank], recv, op=MATMUL, root=0)
            return recv.tolist() if comm.rank == 0 else None

        _, vals = run(main, strategy=strategy)
        expect = mats[0] @ mats[1] @ mats[2] @ mats[3] @ mats[4]
        assert vals[0] == expect.tolist()

    @pytest.mark.parametrize("strategy", STRATS)
    def test_non_contiguous_islands_fall_back(self, strategy):
        """Reordering the ranks so islands interleave must not break the
        rank-ordered fold (hierarchical falls back to its tree path)."""
        key_of = [0, 2, 4, 1, 3]

        def main(comm):
            sub = comm.split(color=0, key=key_of[comm.rank])
            return (sub.rank, sub.allreduce(f"[{sub.rank}]", op=CONCAT))

        _, vals = run(main, strategy=strategy)
        expect = "".join(f"[{i}]" for i in range(5))
        assert all(v[1] == expect for v in vals)


class TestBarrierContract:
    @pytest.mark.parametrize("strategy", STRATS)
    def test_exit_clocks_equal_and_past_slowest_entry(self, strategy):
        def main(comm):
            # Rank 0 is the slowest to arrive.
            comm.advance(0.05 * (comm.size - comm.rank))
            entry = comm.wtime()
            comm.barrier()
            return (entry, comm.wtime())

        _, vals = run(main, strategy=strategy)
        exits = {exit for _, exit in vals}
        assert len(exits) == 1, f"unequal exit clocks: {sorted(exits)}"
        slowest_entry = max(entry for entry, _ in vals)
        assert exits.pop() >= slowest_entry

    @pytest.mark.parametrize("strategy", STRATS)
    def test_single_rank_barrier(self, strategy):
        def main(comm):
            comm.barrier()
            return comm.wtime()

        _, vals = run(main, layout=((CRAY_T3E_600, 1),), strategy=strategy)
        assert vals[0] >= 0.0


class TestTreeEdgeCases:
    @pytest.mark.parametrize("strategy", STRATS)
    @pytest.mark.parametrize("root", [0, 1, 4])
    def test_root_not_an_island_leader(self, strategy, root):
        comm = make_world(TWO_MACHINES, strategy)
        parent, children = comm._tree(root)
        assert_valid_tree(parent, children, 5, root)

    @pytest.mark.parametrize("strategy", STRATS)
    def test_single_rank_islands(self, strategy):
        layout = (
            (CRAY_T3E_600, 1), (CRAY_T90, 1), (IBM_SP2, 1), (SGI_ONYX2_GMD, 1),
        )
        comm = make_world(layout, strategy)
        for root in range(4):
            parent, children = comm._tree(root)
            assert_valid_tree(parent, children, 4, root)

    @pytest.mark.parametrize("strategy", STRATS)
    def test_all_ranks_on_one_host(self, strategy):
        comm = make_world(((CRAY_T3E_600, 6),), strategy)
        for root in (0, 3, 5):
            parent, children = comm._tree(root)
            assert_valid_tree(parent, children, 6, root)

    @pytest.mark.parametrize("strategy", STRATS)
    def test_mixed_island_sizes(self, strategy):
        layout = ((CRAY_T3E_600, 1), (IBM_SP2, 3), (CRAY_T90, 1))
        comm = make_world(layout, strategy)
        for root in range(5):
            parent, children = comm._tree(root)
            assert_valid_tree(parent, children, 5, root)

    def test_hierarchical_crosses_wan_once_per_island(self):
        comm = make_world(TWO_MACHINES, "hierarchical")
        parent, children = comm._tree(0)
        wan_edges = [
            (c, p) for c, p in parent.items() if (c < 3) != (p < 3)
        ]
        assert len(wan_edges) == 1


class TestDtypeSafety:
    def test_Recv_rejects_lossy_cast(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.5, 2.5]), dest=1)
            elif comm.rank == 1:
                buf = np.zeros(2, dtype=np.int32)
                comm.Recv(buf, source=0)

        with pytest.raises(RankFailed, match="cannot safely cast"):
            run(main)

    def test_Recv_allows_safe_upcast(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([1, 2], dtype=np.int32), dest=1)
                return None
            if comm.rank == 1:
                buf = np.zeros(2, dtype=np.float64)
                comm.Recv(buf, source=0)
                return buf.tolist()
            return None

        _, vals = run(main)
        assert vals[1] == [1.0, 2.0]

    @pytest.mark.parametrize("strategy", STRATS)
    def test_Bcast_rejects_lossy_cast(self, strategy):
        def main(comm):
            if comm.rank == 0:
                buf = np.array([1.5, 2.5, 3.5])
            else:
                buf = np.zeros(3, dtype=np.int32)
            comm.Bcast(buf, root=0)

        with pytest.raises(RankFailed, match="cannot safely cast"):
            run(main, strategy=strategy)


class TestWanAccounting:
    def test_hierarchical_allreduce_one_crossing_per_direction(self):
        rounds = 3

        def main(comm):
            for _ in range(rounds):
                comm.allreduce(comm.rank, op=SUM)

        mc, _ = run(main, strategy="hierarchical")
        wan = mc.runtime.traffic_summary()["hierarchical.allreduce"]["wan"]
        # Two islands: leader reduce (one crossing) + leader bcast (one
        # crossing back) per round.
        assert wan["messages"] == 2 * rounds

    def test_hierarchical_alltoall_one_bundle_per_island_pair(self):
        def main(comm):
            comm.alltoall([(comm.rank, d) for d in range(comm.size)])

        mc_naive, _ = run(main, strategy="naive")
        mc_hier, _ = run(main, strategy="hierarchical")
        naive_wan = mc_naive.runtime.traffic_summary()["naive.alltoall"]["wan"]
        hier_wan = mc_hier.runtime.traffic_summary()[
            "hierarchical.alltoall"
        ]["wan"]
        # Naive: every cross-island rank pair sends directly (3*2 each way).
        assert naive_wan["messages"] == 12
        # Hierarchical: one leader bundle per island pair per direction.
        assert hier_wan["messages"] == 2

    def test_p2p_traffic_labelled_separately(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dest=3)
            elif comm.rank == 3:
                comm.recv(source=0)
            comm.barrier()

        mc, _ = run(main, strategy="hierarchical")
        summary = mc.runtime.traffic_summary()
        assert summary["p2p"]["wan"]["messages"] == 1
        assert "hierarchical.barrier" in summary

    def test_per_strategy_telemetry_counters(self):
        reg = MetricsRegistry()
        mc = MetaMPI(wallclock_timeout=30, strategy="hierarchical")
        for spec, n in TWO_MACHINES:
            mc.add_machine(spec, ranks=n)
        instrument_runtime(mc, reg)

        def main(comm):
            comm.allreduce(comm.rank, op=SUM)

        mc.run(main)
        assert (
            reg.value(
                "metampi.collective.messages",
                collective="hierarchical.allreduce",
                scope="wan",
            )
            == 2
        )
        assert (
            reg.value(
                "metampi.collective.bytes",
                collective="hierarchical.allreduce",
                scope="wan",
            )
            > 0
        )

    def test_hierarchical_beats_naive_on_wan_bytes(self):
        payload = list(range(256))

        def main(comm):
            comm.allreduce(payload, op=CONCAT)

        mc_naive, _ = run(main, strategy="naive")
        mc_hier, _ = run(main, strategy="hierarchical")
        naive_wan = mc_naive.runtime.traffic_summary()["naive.allreduce"]["wan"]
        hier_wan = mc_hier.runtime.traffic_summary()[
            "hierarchical.allreduce"
        ]["wan"]
        assert hier_wan["messages"] < naive_wan["messages"]
