"""Stress and property tests of the metampi runtime: randomized
communication patterns must deliver every message, collectives must
match NumPy references, virtual clocks must behave."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.machines import CRAY_T3E_600, CRAY_T90, IBM_SP2
from repro.metampi import MAX, MIN, MetaMPI, SUM

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run(fn, ranks=4, timeout=30, machines=None):
    mc = MetaMPI(wallclock_timeout=timeout)
    if machines is None:
        mc.add_machine(CRAY_T3E_600, ranks=ranks)
    else:
        for spec, n in machines:
            mc.add_machine(spec, ranks=n)
    return [r.value for r in mc.run(fn)]


class TestRandomPatterns:
    @given(
        pattern=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 9)),
            min_size=1,
            max_size=25,
        )
    )
    @SLOW
    def test_every_message_delivered_property(self, pattern):
        """Property: for any (src, dst, tag) schedule known to all ranks,
        every sent message is received exactly once with correct payload."""
        def main(comm):
            me = comm.rank
            for i, (src, dst, tag) in enumerate(pattern):
                if src == dst:
                    continue
                if me == src:
                    comm.send((i, src, tag), dst, tag=tag)
            received = []
            for i, (src, dst, tag) in enumerate(pattern):
                if src == dst:
                    continue
                if me == dst:
                    received.append(comm.recv(source=src, tag=tag))
            return received

        vals = run(main, ranks=4)
        expected_total = sum(1 for s, d, _ in pattern if s != d)
        got_total = sum(len(v) for v in vals)
        assert got_total == expected_total
        for rank, msgs in enumerate(vals):
            for (i, src, tag) in msgs:
                assert pattern[i][0] == src
                assert pattern[i][1] == rank

    @given(seed=st.integers(0, 1000))
    @SLOW
    def test_random_allreduce_matches_numpy_property(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-100, 100, size=(4, 6))

        def main(comm):
            row = data[comm.rank]
            return (
                comm.allreduce(int(row.sum()), op=SUM),
                comm.allreduce(int(row.max()), op=MAX),
                comm.allreduce(int(row.min()), op=MIN),
            )

        vals = run(main, ranks=4)
        expect = (
            int(data.sum()),
            int(data.max(axis=1).max()),
            int(data.min(axis=1).min()),
        )
        assert all(v == expect for v in vals)

    @given(
        sizes=st.lists(st.integers(1, 2000), min_size=1, max_size=6),
        seed=st.integers(0, 99),
    )
    @SLOW
    def test_buffer_stream_integrity_property(self, sizes, seed):
        """Property: a stream of random-size buffers arrives in order and
        bit-exact."""
        rng = np.random.default_rng(seed)
        payloads = [rng.standard_normal(n) for n in sizes]

        def main(comm):
            if comm.rank == 0:
                for p in payloads:
                    comm.Send(p, 1, tag=3)
                return None
            out = []
            for p in payloads:
                buf = np.empty_like(p)
                comm.Recv(buf, source=0, tag=3)
                out.append(buf.copy())
            return out

        vals = run(main, ranks=2)
        for got, sent in zip(vals[1], payloads):
            np.testing.assert_array_equal(got, sent)


class TestClockInvariants:
    def test_clocks_never_decrease_through_p2p(self):
        def main(comm):
            stamps = [comm.wtime()]
            other = 1 - comm.rank
            for k in range(5):
                comm.sendrecv(k, dest=other, source=other, sendtag=k, recvtag=k)
                stamps.append(comm.wtime())
            return stamps

        vals = run(main, ranks=2)
        for stamps in vals:
            assert stamps == sorted(stamps)

    def test_barrier_clocks_exactly_equal(self):
        def main(comm):
            comm.advance(0.01 * (comm.rank + 1))
            comm.barrier()
            return comm.wtime()

        vals = run(main, ranks=4, machines=((CRAY_T3E_600, 2), (IBM_SP2, 2)))
        assert len(set(vals)) == 1

    def test_barrier_cost_positive(self):
        """Since the fix: the barrier itself costs virtual time."""
        def main(comm):
            t0 = comm.wtime()
            comm.barrier()
            return comm.wtime() - t0

        vals = run(main, ranks=2, machines=((CRAY_T3E_600, 1), (IBM_SP2, 1)))
        assert all(v > 0 for v in vals)

    def test_heterogeneous_three_machine_consistency(self):
        def main(comm):
            total = comm.allreduce(comm.rank + 1, op=SUM)
            comm.barrier()
            return (total, comm.wtime())

        vals = run(
            main,
            machines=((CRAY_T3E_600, 2), (CRAY_T90, 2), (IBM_SP2, 2)),
        )
        totals = {v[0] for v in vals}
        clocks = {round(v[1], 12) for v in vals}
        assert totals == {21}
        assert len(clocks) == 1


class TestConcurrentTraffic:
    def test_all_pairs_simultaneous_exchange(self):
        """Everyone sends to everyone at once — no deadlock, all data
        correct (the buffered runtime's guarantee)."""
        def main(comm):
            me = comm.rank
            for d in range(comm.size):
                if d != me:
                    comm.send(f"{me}->{d}", d, tag=me)
            got = {}
            for s in range(comm.size):
                if s != me:
                    got[s] = comm.recv(source=s, tag=s)
            return got

        vals = run(main, ranks=6, timeout=60)
        for me, got in enumerate(vals):
            assert got == {
                s: f"{s}->{me}" for s in range(6) if s != me
            }

    def test_many_small_messages_throughput(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(300):
                    comm.send(i, 1, tag=0)
                return None
            return sum(comm.recv(source=0, tag=0) for _ in range(300))

        vals = run(main, ranks=2, timeout=60)
        assert vals[1] == sum(range(300))

    def test_fan_in_any_source(self):
        """Rank 0 drains messages from all workers with ANY_SOURCE."""
        from repro.metampi import ANY_SOURCE, Status

        def main(comm):
            if comm.rank == 0:
                seen = []
                for _ in range(3 * (comm.size - 1)):
                    st_ = Status()
                    comm.recv(source=ANY_SOURCE, tag=5, status=st_)
                    seen.append(st_.source)
                return sorted(set(seen))
            for _ in range(3):
                comm.send(comm.rank, 0, tag=5)
            return None

        vals = run(main, ranks=5, timeout=60)
        assert vals[0] == [1, 2, 3, 4]
