"""Tests for ATM cells and AAL5 segmentation/reassembly."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.atm import (
    AAL5Frame,
    AAL5Reassembler,
    AAL5_TRAILER_BYTES,
    ATM_CELL_BYTES,
    ATM_PAYLOAD_BYTES,
    aal5_cells,
    aal5_efficiency,
    aal5_padding,
    aal5_wire_bytes,
)


def test_cell_geometry():
    assert ATM_CELL_BYTES == 53
    assert ATM_PAYLOAD_BYTES == 48


def test_single_cell_for_tiny_payload():
    # 40 payload + 8 trailer = 48: exactly one cell.
    assert aal5_cells(40) == 1


def test_trailer_forces_second_cell():
    # 41 + 8 = 49 > 48: two cells.
    assert aal5_cells(41) == 2


def test_zero_payload_still_one_cell():
    assert aal5_cells(0) == 1


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        aal5_cells(-1)


def test_wire_bytes_9180_mtu_datagram():
    # Classical IP default MTU + LLC/SNAP: 9180+8=9188; +8 trailer = 9196;
    # ceil(9196/48) = 192 cells.
    assert aal5_cells(9188) == 192
    assert aal5_wire_bytes(9188) == 192 * 53


def test_large_payload_efficiency_near_48_53():
    eff = aal5_efficiency(65536)
    assert 0.89 < eff < 48 / 53 + 0.001


def test_small_payload_efficiency_poor():
    assert aal5_efficiency(40) == pytest.approx(40 / 53)


@given(payload=st.integers(min_value=0, max_value=200_000))
def test_aal5_invariants_property(payload):
    """PDU fits exactly: payload + pad + trailer == cells * 48."""
    cells = aal5_cells(payload)
    pad = aal5_padding(payload)
    assert 0 <= pad < ATM_PAYLOAD_BYTES
    assert payload + pad + AAL5_TRAILER_BYTES == cells * ATM_PAYLOAD_BYTES
    assert aal5_wire_bytes(payload) == cells * ATM_CELL_BYTES


@given(payload=st.integers(min_value=1, max_value=100_000))
def test_efficiency_bounded_property(payload):
    eff = aal5_efficiency(payload)
    assert 0.0 < eff <= 48 / 53


def test_frame_segmentation_cell_count_and_flags():
    frame = AAL5Frame(payload_bytes=1000, pdu_id=7)
    cells = list(frame.segment())
    assert len(cells) == frame.n_cells == aal5_cells(1000)
    assert all(not c.last for c in cells[:-1])
    assert cells[-1].last
    assert [c.seq for c in cells] == list(range(len(cells)))
    assert all(c.pdu_id == 7 for c in cells)


def test_reassembly_roundtrip():
    rx = AAL5Reassembler()
    for pdu in range(3):
        frame = AAL5Frame(payload_bytes=500, pdu_id=pdu)
        done = None
        for cell in frame.segment():
            done = rx.push(cell)
        assert done == pdu
    assert rx.completed == [0, 1, 2]
    assert rx.errors == 0


def test_reassembly_detects_lost_cell():
    rx = AAL5Reassembler()
    frame = AAL5Frame(payload_bytes=500, pdu_id=1)
    cells = list(frame.segment())
    assert len(cells) > 2
    for cell in cells[:3] + cells[4:]:  # drop cell #3
        rx.push(cell)
    assert rx.errors >= 1
    assert 1 not in rx.completed


def test_reassembly_interleaved_vcs_independent():
    rx = AAL5Reassembler()
    f1 = AAL5Frame(payload_bytes=200, vci=32, pdu_id=1)
    f2 = AAL5Frame(payload_bytes=200, vci=33, pdu_id=2)
    c1, c2 = list(f1.segment()), list(f2.segment())
    # interleave the two VCs cell by cell
    for a, b in zip(c1, c2):
        rx.push(a)
        rx.push(b)
    assert sorted(rx.completed) == [1, 2]
    assert rx.errors == 0


@given(payloads=st.lists(st.integers(1, 5000), min_size=1, max_size=10))
def test_reassembly_lossless_sequence_property(payloads):
    """Property: without loss, every PDU on one VC reassembles, in order."""
    rx = AAL5Reassembler()
    for i, p in enumerate(payloads):
        for cell in AAL5Frame(payload_bytes=p, pdu_id=i).segment():
            rx.push(cell)
    assert rx.completed == list(range(len(payloads)))
    assert rx.errors == 0


def test_framing_cost_is_o1_in_packet_size():
    """The per-packet cell tax is a closed-form computation plus a
    per-size memo: the framing hook runs once per *distinct* datagram
    size — never per cell, never per byte — so a 9 MByte datagram costs
    the same bookkeeping as a 64-byte one."""
    from repro.netsim.core import AtmFraming
    from repro.netsim.atm import aal5_wire_bytes
    from repro.netsim.ip import LLC_SNAP_HEADER

    calls: list[int] = []

    class SpyFraming(AtmFraming):
        __slots__ = ()

        def wire_bytes(self, ip_bytes: int) -> int:
            calls.append(ip_bytes)
            return super().wire_bytes(ip_bytes)

    framing = SpyFraming()
    small, huge = 64, 9 * 1024 * 1024
    assert framing.wire(small) == aal5_wire_bytes(small + LLC_SNAP_HEADER)
    assert framing.wire(huge) == aal5_wire_bytes(huge + LLC_SNAP_HEADER)
    # One computation per distinct size, independent of the size itself
    # (the huge datagram spans ~190k cells; none of them were iterated).
    assert calls == [small, huge]
    # Repeats of a seen size hit the memo: zero further hook calls.
    for _ in range(1000):
        framing.wire(small)
        framing.wire(huge)
    assert calls == [small, huge]


def test_framing_hook_count_through_link_transmit():
    """End to end: transmitting many packets over an ATM-framed link
    invokes the framing computation once per distinct size class, not
    once per packet or per cell."""
    from repro.netsim.core import AtmFraming, Host, Network, Packet
    from repro.sim import Environment

    calls: list[int] = []

    class SpyFraming(AtmFraming):
        __slots__ = ()

        def wire_bytes(self, ip_bytes: int) -> int:
            calls.append(ip_bytes)
            return super().wire_bytes(ip_bytes)

    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Host(env, "b"))
    net.link("a", "b", rate=622e6, propagation=1e-3, framing=SpyFraming())
    got: list[int] = []
    net.host("b").register_sink("f", lambda p, now: got.append(p.seq))
    for seq in range(50):
        net.host("a").send(
            Packet(
                flow="f",
                src="a",
                dst="b",
                ip_bytes=64 * 1024 if seq % 2 else 1500,
                payload_bytes=1000,
                seq=seq,
            )
        )
    net.env.run()
    assert len(got) == 50
    assert sorted(set(calls)) == [1500, 64 * 1024]
    assert len(calls) == 2, (
        f"framing hook ran {len(calls)} times for 50 packets of 2 sizes"
    )
