"""Tests of concurrent traffic sharing the testbed: fairness at a
bottleneck and non-interference on disjoint paths."""

import pytest

from repro.netsim import BulkTransfer, ClassicalIP, build_testbed
from repro.netsim.ip import TESTBED_MTU

IP64K = ClassicalIP(TESTBED_MTU)
MB = 2**20


class TestSharedBottleneck:
    def test_two_flows_into_one_host_share_its_bus(self):
        """Two senders into the SP2: the microchannel serializes them, so
        each gets roughly half of the ~265 Mbit/s single-flow rate."""
        tb = build_testbed()
        a = BulkTransfer(tb.net, "t3e-600", "sp2", 20 * MB, ip=IP64K)
        b = BulkTransfer(tb.net, "t3e-1200", "sp2", 20 * MB, ip=IP64K)
        tb.env.run(until=tb.env.all_of([a.done, b.done]))
        for flow in (a, b):
            assert 100e6 < flow.throughput < 200e6

    def test_aggregate_preserved_at_bottleneck(self):
        tb = build_testbed()
        a = BulkTransfer(tb.net, "t3e-600", "sp2", 20 * MB, ip=IP64K)
        b = BulkTransfer(tb.net, "t3e-1200", "sp2", 20 * MB, ip=IP64K)
        tb.env.run(until=tb.env.all_of([a.done, b.done]))
        total_bytes = 40 * MB
        elapsed = max(a.end_time, b.end_time) - min(a.start_time, b.start_time)
        aggregate = total_bytes * 8 / elapsed
        # Aggregate approaches the single-flow bottleneck rate.
        assert 230e6 < aggregate < 290e6

    def test_disjoint_paths_do_not_interfere(self):
        """A local Jülich transfer and a GMD-side transfer never share a
        link: both run at their solo rates."""
        tb = build_testbed()
        solo = BulkTransfer(
            tb.net, "t3e-600", "t3e-1200", 20 * MB, ip=IP64K
        ).run()

        tb2 = build_testbed()
        local = BulkTransfer(tb2.net, "t3e-600", "t3e-1200", 20 * MB, ip=IP64K)
        remote = BulkTransfer(tb2.net, "onyx2-gmd", "e500-gmd", 20 * MB, ip=IP64K)
        tb2.env.run(until=tb2.env.all_of([local.done, remote.done]))
        assert local.throughput == pytest.approx(solo, rel=0.02)

    def test_wan_capacity_absorbs_parallel_site_pairs(self):
        """OC-48 has room: two simultaneous cross-WAN flows between
        different host pairs both beat 200 Mbit/s."""
        tb = build_testbed()
        a = BulkTransfer(tb.net, "onyx2-juelich", "onyx2-gmd", 20 * MB, ip=IP64K)
        b = BulkTransfer(tb.net, "t3e-600", "e500-gmd", 20 * MB, ip=IP64K)
        tb.env.run(until=tb.env.all_of([a.done, b.done]))
        assert a.throughput > 200e6
        assert b.throughput > 200e6
