"""Shared-backbone contention: DRR fairness vs. the max-min model,
per-flow accounting, and the scheduler data structure itself.

The fairness contract: N backlogged flows crossing one DRR-scheduled
bottleneck link each get the share :func:`fair_share_throughputs`
predicts, on both scheduling forms, and every dropped packet is
attributed to its flow so the per-flow tallies reconcile exactly with
the aggregate link/gateway counters.
"""

import pytest

from repro.netsim import (
    BulkTransfer,
    CbrFlow,
    ClassicalIP,
    DrrScheduler,
    FlowDemand,
    Gateway,
    Host,
    Network,
    Switch,
    build_testbed,
    fair_share_throughputs,
)
from repro.netsim.core import Packet
from repro.netsim.ip import TESTBED_MTU
from repro.sim import Environment

MB = 1024 * 1024


# -- fairness vs the closed-form model ---------------------------------------

def _dumbbell(fast_path: bool, n: int, rate: float = 100e6):
    """n zero-cost sources, fast access links, one shared bottleneck."""
    env = Environment(fast_path=fast_path)
    net = Network(env)
    for i in range(n):
        net.add(Host(env, f"src{i}"))
    net.add(Switch(env, "sw", latency=1e-6))
    net.add(Host(env, "dst"))
    for i in range(n):
        net.link(f"src{i}", "sw", rate * 10, 1e-6)
    net.link("sw", "dst", rate, 1e-6)
    return env, net


@pytest.mark.parametrize("fast_path", [True, False])
@pytest.mark.parametrize("n", [2, 3])
def test_equal_flows_match_fair_share_on_dumbbell(fast_path, n):
    env, net = _dumbbell(fast_path, n)
    flows = [
        BulkTransfer(net, f"src{i}", "dst", 2 * MB, name=f"eq{i}")
        for i in range(n)
    ]
    for flow in flows:
        env.run(until=flow.done)
    model = fair_share_throughputs(net, flows)
    goodputs = [f.throughput for f in flows]
    for flow in flows:
        assert abs(flow.throughput - model[flow.name]) / model[flow.name] < 0.05
    # ... and the flows sit within 2% of each other.
    assert max(goodputs) / min(goodputs) < 1.02


@pytest.mark.parametrize("fast_path", [True, False])
def test_testbed_equal_flows_match_fair_share(fast_path):
    """The acceptance run: one transfer per Cray, all crossing the
    622 Mbit/s ATM gateway attachment of the Figure-1 testbed."""
    tb = build_testbed(env=Environment(fast_path=fast_path))
    ip = ClassicalIP(TESTBED_MTU)
    flows = [
        BulkTransfer(tb.net, src, "e500-gmd", 4 * MB, ip=ip, name=f"eq-{src}")
        for src in ("t3e-600", "t3e-1200", "t90")
    ]
    for flow in flows:
        tb.net.env.run(until=flow.done)
    model = fair_share_throughputs(tb.net, flows)
    for flow in flows:
        assert abs(flow.throughput - model[flow.name]) / model[flow.name] < 0.05


def test_fair_share_respects_cbr_rate_cap():
    """A fixed-rate source below its fair share keeps exactly its rate;
    the slack goes to the elastic flows."""
    env, net = _dumbbell(True, 2)
    demands = [
        FlowDemand("bulk", "src0", "dst"),
        FlowDemand("cbr", "src1", "dst", rate=10e6),
    ]
    shares = fair_share_throughputs(net, demands)
    assert shares["cbr"] == pytest.approx(10e6)
    assert shares["bulk"] > shares["cbr"]
    # The elastic flow absorbs the remaining bottleneck capacity.
    single = fair_share_throughputs(net, [FlowDemand("solo", "src0", "dst")])
    assert shares["bulk"] < single["solo"]


def test_fair_share_unconstrained_flow_is_infinite():
    """Free paths (zero-cost hosts, no finite resource) fill forever."""
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Host(env, "b"))
    net.link("a", "b", float("inf"))
    shares = fair_share_throughputs(net, [FlowDemand("f", "a", "b")])
    assert shares["f"] == float("inf")


def test_fair_share_duplicate_names_rejected():
    env, net = _dumbbell(True, 2)
    with pytest.raises(ValueError, match="duplicate flow name"):
        fair_share_throughputs(
            net,
            [FlowDemand("x", "src0", "dst"), FlowDemand("x", "src1", "dst")],
        )


# -- per-flow accounting reconciles with the aggregates ----------------------

def _overloaded_run(fast_path: bool):
    """Two CBR streams oversubscribing a shallow bottleneck queue."""
    env = Environment(fast_path=fast_path)
    net = Network(env)
    for name in ("src0", "src1"):
        net.add(Host(env, name))
    net.add(Switch(env, "sw", latency=1e-6))
    net.add(Host(env, "dst"))
    net.link("src0", "sw", 1e9, 1e-6)
    net.link("src1", "sw", 1e9, 1e-6)
    bott = net.link("sw", "dst", 50e6, 1e-6, queue_packets=4)
    flows = [
        CbrFlow(
            net, src, "dst", frame_bytes=100_000, interval=0.01,
            n_frames=20, name=f"cbr-{src}",
        )
        for src in ("src0", "src1")
    ]
    for flow in flows:
        env.run(until=flow.done)
    return bott, flows


@pytest.mark.parametrize("fast_path", [True, False])
def test_per_flow_drops_sum_to_link_totals(fast_path):
    bott, flows = _overloaded_run(fast_path)
    assert bott.drops["sw"] > 0  # the overload actually dropped
    for direction in bott.drops:
        per_flow = sum(bott.flow_drops[direction].values())
        assert per_flow == bott.drops[direction] + bott.lost[direction]
    # Both competing flows are represented in the attribution.
    assert {"cbr-src0", "cbr-src1"} <= set(bott.flow_drops["sw"])
    # ... and the transmit tallies reconcile too.
    for direction in bott.tx_packets:
        assert (
            sum(bott.flow_tx_packets[direction].values())
            == bott.tx_packets[direction]
        )
        assert (
            sum(bott.flow_tx_bytes[direction].values())
            == bott.tx_bytes[direction]
        )


def test_drop_accounting_identical_across_forms():
    fast_bott, fast_flows = _overloaded_run(True)
    slow_bott, slow_flows = _overloaded_run(False)
    assert fast_bott.flow_drops == slow_bott.flow_drops
    assert fast_bott.flow_tx_packets == slow_bott.flow_tx_packets
    assert [f.frames_received for f in fast_flows] == [
        f.frames_received for f in slow_flows
    ]


@pytest.mark.parametrize("fast_path", [True, False])
def test_gateway_per_flow_accounting(fast_path):
    """A crash mid-stream: flushed and in-service packets are attributed
    per flow, and forwarded tallies reconcile with the aggregate."""
    env = Environment(fast_path=fast_path)
    net = Network(env)
    net.add(Host(env, "src0"))
    net.add(Host(env, "src1"))
    net.add(Gateway(env, "gw", per_packet=120e-6))
    net.add(Host(env, "dst"))
    net.link("src0", "gw", 1e9, 1e-6)
    net.link("src1", "gw", 1e9, 1e-6)
    net.link("gw", "dst", 100e6, 1e-6)
    gw = net.nodes["gw"]
    flows = [
        CbrFlow(
            net, src, "dst", frame_bytes=50_000, interval=0.005,
            n_frames=20, name=f"cbr-{src}", drain_timeout=1.0,
        )
        for src in ("src0", "src1")
    ]
    env.call_later(0.02, gw.crash)
    env.call_later(0.05, gw.restart)
    for flow in flows:
        env.run(until=flow.done)
    assert gw.dropped > 0
    assert sum(gw.flow_drops.values()) == gw.dropped
    assert sum(gw.flow_forwarded.values()) == gw.forwarded
    assert {"cbr-src0", "cbr-src1"} <= set(gw.flow_forwarded)


# -- the scheduler data structure --------------------------------------------

def _pkt(flow: str, seq: int, nbytes: int = 1000) -> Packet:
    return Packet(
        flow=flow, src="a", dst="b", ip_bytes=nbytes, payload_bytes=nbytes,
        seq=seq,
    )


def test_drr_single_flow_is_fifo():
    sched = DrrScheduler(Environment())
    packets = [_pkt("f", i) for i in range(5)]
    for p in packets:
        sched.put_nowait(p)
    assert [sched.dequeue().seq for _ in range(5)] == [0, 1, 2, 3, 4]
    assert len(sched) == 0


def test_drr_interleaves_backlogged_flows():
    sched = DrrScheduler(Environment())
    for i in range(4):
        sched.put_nowait(_pkt("a", i))
    for i in range(4):
        sched.put_nowait(_pkt("b", i))
    served = [sched.dequeue().flow for _ in range(8)]
    # Equal unit costs: strict alternation, despite a's head start.
    assert served[:4].count("a") == 2 and served[:4].count("b") == 2


def test_drr_respects_weights():
    sched = DrrScheduler(Environment())
    sched.set_weight("heavy", 3.0)
    for i in range(12):
        sched.put_nowait(_pkt("heavy", i))
        sched.put_nowait(_pkt("light", i))
    served = [sched.dequeue().flow for _ in range(8)]
    assert served.count("heavy") == 3 * served.count("light")


def test_drr_weight_must_be_positive():
    sched = DrrScheduler(Environment())
    with pytest.raises(ValueError):
        sched.set_weight("f", 0.0)


def test_drr_cost_fairness_in_bytes():
    """With a byte cost, a big-packet flow gets fewer packets per round
    so both flows progress at equal byte rates."""
    sched = DrrScheduler(Environment(), cost=lambda p: float(p.ip_bytes))
    for i in range(8):
        sched.put_nowait(_pkt("big", i, nbytes=2000))
        sched.put_nowait(_pkt("small", i, nbytes=1000))
    bytes_served = {"big": 0, "small": 0}
    for _ in range(9):
        p = sched.dequeue()
        bytes_served[p.flow] += p.ip_bytes
    assert abs(bytes_served["big"] - bytes_served["small"]) <= 2000


def test_drr_clear_resets_state():
    sched = DrrScheduler(Environment())
    for i in range(3):
        sched.put_nowait(_pkt("a", i))
        sched.put_nowait(_pkt("b", i))
    assert sched.depths() == {"a": 3, "b": 3}
    flushed = sched.clear()
    assert len(flushed) == 6
    assert len(sched) == 0
    assert sched.depths() == {}
    # Still serviceable after the flush.
    sched.put_nowait(_pkt("a", 9))
    assert sched.dequeue().seq == 9
