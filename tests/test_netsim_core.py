"""Tests for the packet-level network: links, hosts, switches, gateways,
routing."""

import pytest

from repro.netsim.core import (
    AtmFraming,
    Gateway,
    Host,
    HippiFraming,
    Network,
    Packet,
    PlainFraming,
    Switch,
)
from repro.sim import Environment


def simple_net(**host_kw):
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a", **host_kw))
    net.add(Host(env, "b", **host_kw))
    net.link("a", "b", rate=1e9, propagation=1e-3, framing=PlainFraming(0))
    return env, net


def mkpkt(flow="f", src="a", dst="b", ip_bytes=1000, payload=960, **kw):
    return Packet(
        flow=flow, src=src, dst=dst, ip_bytes=ip_bytes, payload_bytes=payload, **kw
    )


def test_delivery_and_latency():
    env, net = simple_net()
    got = []
    net.host("b").register_sink("f", lambda p, t: got.append((p.seq, t)))
    net.host("a").send(mkpkt(seq=7))
    env.run()
    assert got[0][0] == 7
    # serialization 8e3/1e9 = 8 µs + 1 ms propagation
    assert got[0][1] == pytest.approx(1e-3 + 8e-6)


def test_two_packets_pipeline_on_link():
    """Propagation must not serialize back-to-back packets."""
    env, net = simple_net()
    times = []
    net.host("b").register_sink("f", lambda p, t: times.append(t))
    net.host("a").send(mkpkt(seq=0))
    net.host("a").send(mkpkt(seq=1))
    env.run()
    # second arrives one serialization (8 µs) later, not one propagation later
    assert times[1] - times[0] == pytest.approx(8e-6)


def test_host_stack_cost_applied_both_sides():
    env, net = simple_net(cpu_per_packet=1e-3)
    times = []
    net.host("b").register_sink("f", lambda p, t: times.append(t))
    net.host("a").send(mkpkt())
    env.run()
    # 1 ms send stack + 8 µs wire + 1 ms propagation + 1 ms recv stack
    assert times[0] == pytest.approx(3e-3 + 8e-6)


def test_io_bus_limits_throughput():
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Host(env, "b", io_bus_rate=100e6))
    net.link("a", "b", rate=1e9, framing=PlainFraming(0))
    times = []
    net.host("b").register_sink("f", lambda p, t: times.append(t))
    for i in range(3):
        net.host("a").send(mkpkt(ip_bytes=12500, payload=12500, seq=i))  # 1 ms at bus
    env.run()
    # steady state: one packet per 1 ms (bus), not per 0.1 ms (wire)
    assert times[2] - times[1] == pytest.approx(1e-3, rel=0.01)


def test_switch_forwards_with_latency():
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Switch(env, "sw", latency=100e-6))
    net.add(Host(env, "b"))
    net.link("a", "sw", 1e9, framing=PlainFraming(0))
    net.link("sw", "b", 1e9, framing=PlainFraming(0))
    times = []
    net.host("b").register_sink("f", lambda p, t: times.append(t))
    net.host("a").send(mkpkt())
    env.run()
    assert times[0] == pytest.approx(2 * 8e-6 + 100e-6)


def test_gateway_store_and_forward_serializes():
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Gateway(env, "gw", per_packet=1e-3))
    net.add(Host(env, "b"))
    net.link("a", "gw", 1e9, framing=PlainFraming(0))
    net.link("gw", "b", 1e9, framing=PlainFraming(0))
    times = []
    net.host("b").register_sink("f", lambda p, t: times.append(t))
    for i in range(3):
        net.host("a").send(mkpkt(seq=i))
    env.run()
    assert net.nodes["gw"].forwarded == 3
    assert times[1] - times[0] == pytest.approx(1e-3, rel=0.01)


def test_multihop_routing_shortest_path():
    env = Environment()
    net = Network(env)
    for n in ("a", "s1", "s2", "b"):
        net.add(Host(env, n) if n in ("a", "b") else Switch(env, n, latency=0))
    net.link("a", "s1", 1e9)
    net.link("s1", "s2", 1e9)
    net.link("s2", "b", 1e9)
    assert net.shortest_path("a", "b") == ["a", "s1", "s2", "b"]
    assert net.next_hop("a", "b") == "s1"
    assert net.next_hop("s1", "b") == "s2"


def test_no_route_raises():
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Host(env, "b"))
    with pytest.raises(ValueError):
        net.shortest_path("a", "b")


def test_duplicate_node_rejected():
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    with pytest.raises(ValueError):
        net.add(Host(env, "a"))


def test_host_lookup_type_checked():
    env = Environment()
    net = Network(env)
    net.add(Switch(env, "sw"))
    with pytest.raises(TypeError):
        net.host("sw")


def test_link_queue_drops_when_full():
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Host(env, "b"))
    link = net.link("a", "b", rate=1e6, framing=PlainFraming(0), queue_packets=2)
    for i in range(10):
        net.host("a").send(mkpkt(seq=i, ip_bytes=10000, payload=10000))
    env.run()
    assert link.drops["a"] > 0


def test_framing_changes_wire_bytes():
    plain = PlainFraming(0)
    atm = AtmFraming()
    hippi = HippiFraming()
    assert plain.wire_bytes(9180) == 9180
    assert atm.wire_bytes(9180) == 192 * 53  # + LLC/SNAP, AAL5, cells
    assert hippi.wire_bytes(9180) == 10 * 1024  # +40 FP hdr, 10 bursts


def test_link_tx_byte_accounting():
    env, net = simple_net()
    net.host("b").register_sink("f", lambda p, t: None)
    net.host("a").send(mkpkt(ip_bytes=1000))
    env.run()
    link = net.nodes["a"].links[0]
    assert link.tx_bytes["a"] == 1000
    assert link.tx_bytes["b"] == 0


def test_invalid_link_rate():
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Host(env, "b"))
    with pytest.raises(ValueError):
        net.link("a", "b", rate=0)


def test_host_forwards_transit_packets():
    """A Host that is not the destination relays (acts as IP router)."""
    env = Environment()
    net = Network(env)
    for n in ("a", "m", "b"):
        net.add(Host(env, n))
    net.link("a", "m", 1e9, framing=PlainFraming(0))
    net.link("m", "b", 1e9, framing=PlainFraming(0))
    got = []
    net.host("b").register_sink("f", lambda p, t: got.append(p.hops))
    net.host("a").send(mkpkt())
    env.run()
    assert got == [2]
