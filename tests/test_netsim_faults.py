"""Fault injection and loss recovery: retransmitting TCP, link/gateway
failures, route failover, and regression tests for the drop-hang bug
family (flows that used to block forever on a single lost packet)."""

import pytest

from repro.machines import CRAY_T3E_600, IBM_SP2
from repro.metampi import MetaMPI
from repro.metampi.errors import RankFailed, TransportError
from repro.metampi.transport import RetryPolicy, TransportModel
from repro.netsim import (
    BulkTransfer,
    CbrFlow,
    ClassicalIP,
    FaultInjector,
    PingFlow,
    TransferStalled,
    build_testbed,
)
from repro.netsim.core import Host, Network, PlainFraming, Switch
from repro.netsim.ip import TESTBED_MTU
from repro.netsim.tcp import tcp_loss_throughput_bound, tcp_steady_throughput
from repro.sim import Environment

IP64K = ClassicalIP(TESTBED_MTU)


def two_hosts(rate=1e9, propagation=1e-3, queue_packets=float("inf"), **host_kw):
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a", **host_kw))
    net.add(Host(env, "b", **host_kw))
    net.link(
        "a", "b",
        rate=rate, propagation=propagation,
        framing=PlainFraming(0), queue_packets=queue_packets,
    )
    return net


def diamond_net():
    """a — x — b and a — y — b: two equal-cost two-hop paths."""
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a"))
    net.add(Host(env, "b"))
    net.add(Switch(env, "x", latency=0.0))
    net.add(Switch(env, "y", latency=0.0))
    net.link("a", "x", 1e9, framing=PlainFraming(0))
    net.link("x", "b", 1e9, framing=PlainFraming(0))
    net.link("a", "y", 1e9, framing=PlainFraming(0))
    net.link("y", "b", 1e9, framing=PlainFraming(0))
    return net


class TestBulkTransferRecovery:
    def test_completes_over_bounded_queue(self):
        """Acceptance: a finite transmit queue drops packets under a full
        window; the transfer must retransmit and still complete (the seed
        code deadlocked here — `done` never fired)."""
        net = two_hosts(rate=100e6, propagation=1e-3, queue_packets=4)
        bt = BulkTransfer(net, "a", "b", nbytes=2_000_000, ip=ClassicalIP(9180))
        rate = bt.run()
        link = net.links["a--b"]
        assert link.drops["a"] > 0  # losses really happened
        assert bt.retransmits > 0
        assert bt._received == 2_000_000
        assert 0 < rate < float("inf")

    def test_completes_under_random_wire_loss(self):
        net = two_hosts(rate=622e6, propagation=1e-3)
        FaultInjector(net, seed=42).random_loss("a--b", 0.02, direction="a")
        bt = BulkTransfer(net, "a", "b", nbytes=5_000_000, ip=IP64K)
        rate = bt.run()
        assert bt._received == 5_000_000
        assert bt.retransmits > 0
        assert 0 < rate < float("inf")

    def test_lossy_throughput_bounded_by_zero_loss_reference(self):
        """Cross-check: the measured degraded goodput stays below the
        closed-form zero-loss reference and above a sanity floor."""
        loss = 0.01
        net = two_hosts(rate=622e6, propagation=1e-3)
        zero_loss = tcp_steady_throughput(net, "a", "b", IP64K, 8 * 1024 * 1024)
        bound = tcp_loss_throughput_bound(
            net, "a", "b", IP64K, loss, 8 * 1024 * 1024
        )
        FaultInjector(net, seed=7).random_loss("a--b", loss, direction="a")
        measured = BulkTransfer(net, "a", "b", nbytes=10_000_000, ip=IP64K).run()
        assert measured < zero_loss
        assert bound <= zero_loss
        assert measured > 0.01 * bound  # degraded, not dead

    def test_zero_loss_bound_is_steady_state(self):
        net = two_hosts()
        assert tcp_loss_throughput_bound(
            net, "a", "b", IP64K, 0.0
        ) == tcp_steady_throughput(net, "a", "b", IP64K)

    def test_recovers_from_mid_transfer_link_outage(self):
        net = two_hosts(rate=622e6, propagation=1e-3)
        FaultInjector(net).link_down("a--b", at=0.05, duration=0.5)
        bt = BulkTransfer(net, "a", "b", nbytes=20_000_000, ip=IP64K)
        rate = bt.run()
        assert bt.timeouts > 0  # the outage forced RTO recovery
        assert bt._received == 20_000_000
        assert 0 < rate < float("inf")

    def test_dead_path_raises_instead_of_hanging(self):
        net = two_hosts()
        FaultInjector(net).link_down("a--b", at=0.0)  # down forever
        bt = BulkTransfer(net, "a", "b", nbytes=1_000_000, ip=IP64K)
        with pytest.raises(TransferStalled):
            bt.run()

    def test_fast_retransmit_on_single_drop(self):
        """One mid-stream drop with traffic behind it triggers dup-ACK
        fast retransmit, not (only) an RTO."""
        net = two_hosts(rate=622e6, propagation=2e-3)
        # Lose a short window of packets early in the transfer.
        FaultInjector(net, seed=3).random_loss(
            "a--b", 0.9, start=0.004, duration=0.002, direction="a"
        )
        bt = BulkTransfer(net, "a", "b", nbytes=20_000_000, ip=IP64K)
        bt.run()
        assert bt.fast_retransmits > 0
        assert bt._received == 20_000_000

    def test_fault_injection_is_deterministic(self):
        def run_once():
            net = two_hosts(rate=622e6, propagation=1e-3)
            FaultInjector(net, seed=99).random_loss("a--b", 0.02)
            bt = BulkTransfer(net, "a", "b", nbytes=5_000_000, ip=IP64K)
            rate = bt.run()
            link = net.links["a--b"]
            return rate, bt.retransmits, link.lost["a"], link.lost["b"]

        assert run_once() == run_once()

    def test_no_loss_counters_stay_zero(self):
        net = two_hosts()
        bt = BulkTransfer(net, "a", "b", nbytes=5_000_000, ip=IP64K)
        bt.run()
        assert bt.retransmits == 0
        assert bt.timeouts == 0
        assert bt.fast_retransmits == 0


class TestPingLossRegression:
    def test_lost_echo_does_not_hang(self):
        """Seed bug: one lost echo meant `done` never fired."""
        net = two_hosts()
        FaultInjector(net).link_down("a--b")  # everything is lost
        flow = PingFlow(net, "a", "b", count=5, deadline=0.5)
        flow.run()  # must return
        assert flow.lost == 5
        assert flow.rtt.n == 0

    def test_partial_loss_reports_count(self):
        net = two_hosts(rate=1e9, propagation=1e-4)
        # Lose echoes for a window covering some of the pings.
        FaultInjector(net).link_down("a--b", at=2.5e-3, duration=2.5e-3)
        flow = PingFlow(net, "a", "b", count=8, interval=1e-3, deadline=0.5)
        flow.run()
        assert 0 < flow.lost < 8
        assert flow.rtt.n + flow.lost == 8

    def test_no_loss_still_completes_early(self):
        net = two_hosts(rate=1e9, propagation=2e-3)
        flow = PingFlow(net, "a", "b", count=5)
        rtt = flow.run()
        assert flow.lost == 0
        assert rtt == pytest.approx(4e-3, rel=0.05)


class TestCbrTailRegression:
    def test_long_rtt_tail_not_miscounted_as_lost(self):
        """Seed bug: the fixed `interval * 4` drain under-waited on
        long-RTT paths, so in-flight frames were declared lost."""
        net = two_hosts(rate=1e9, propagation=0.5)  # half-second one-way
        flow = CbrFlow(
            net, "a", "b", frame_bytes=100_000, interval=1e-3, n_frames=10
        ).run()
        assert flow.frames_lost == 0
        assert flow.frames_received == 10

    def test_explicit_drain_timeout_caps_wait(self):
        net = two_hosts(rate=1e9, propagation=0.5)
        flow = CbrFlow(
            net, "a", "b", frame_bytes=100_000, interval=1e-3, n_frames=10,
            drain_timeout=0.01,  # give up long before the 0.5 s flight
        ).run()
        assert flow.frames_lost == 10

    def test_real_drops_still_counted(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", rate=50e6, framing=PlainFraming(0), queue_packets=4)
        flow = CbrFlow(
            net, "a", "b", frame_bytes=125_000, interval=1e-2, n_frames=40
        ).run()
        assert flow.frames_lost > 0


class TestNetworkFailureAwareness:
    def test_duplicate_parallel_link_rejected(self):
        """Seed bug: a second a--b link was accepted and shadowed by
        `link_to`, so its stats were attributed to the wrong link."""
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", 1e9)
        with pytest.raises(ValueError):
            net.link("a", "b", 1e9)
        with pytest.raises(ValueError):
            net.link("b", "a", 622e6)  # same pair, reversed

    def test_utilization_bounded_mid_transmission(self):
        """Seed bug: busy_time was credited at transmit start, so a query
        mid-serialization reported utilization > 1."""
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        link = net.link("a", "b", rate=1e3, framing=PlainFraming(0))
        net.host("b").register_sink("f", lambda p, t: None)
        from repro.netsim.core import Packet

        net.host("a").send(
            Packet(flow="f", src="a", dst="b", ip_bytes=1000, payload_bytes=1000)
        )
        # 1000 B at 1 kbit/s = 8 s serialization; query at 1 s.
        env.run(until=1.0)
        assert 0.0 < link.utilization("a") <= 1.0

    def test_route_cache_invalidated_on_link_state_change(self):
        net = diamond_net()
        first = net.next_hop("a", "b")
        alternate = "y" if first == "x" else "x"
        net.nodes["a"].link_to(first).set_up(False)
        assert net.next_hop("a", "b") == alternate
        # ... and the path works end to end after failover
        got = []
        net.host("b").register_sink("f", lambda p, t: got.append(t))
        from repro.netsim.core import Packet

        net.host("a").send(
            Packet(flow="f", src="a", dst="b", ip_bytes=1000, payload_bytes=1000)
        )
        net.env.run()
        assert len(got) == 1

    def test_link_recovery_restores_routes(self):
        net = diamond_net()
        first = net.next_hop("a", "b")
        link = net.nodes["a"].link_to(first)
        link.set_up(False)
        assert net.next_hop("a", "b") != first
        link.set_up(True)
        assert net.next_hop("a", "b") == first  # BFS order is deterministic

    def test_partition_drops_instead_of_crashing(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", 1e9, framing=PlainFraming(0))
        from repro.netsim.core import Packet

        net.links["a--b"].set_up(False)
        net.host("a").send(
            Packet(flow="f", src="a", dst="b", ip_bytes=100, payload_bytes=100)
        )
        env.run()
        assert net.no_route_drops == 1

    def test_gateway_crash_and_restart(self):
        tb = build_testbed()
        fi = FaultInjector(tb.net)
        fi.gateway_crash("gw-e5000", at=0.0, duration=0.3)
        bt = BulkTransfer(tb.net, "t3e-600", "sp2", 4 * 2**20, ip=IP64K)
        rate = bt.run()
        assert bt._received == 4 * 2**20
        assert rate > 0
        assert [what for _, what in fi.log] == [
            "gateway gw-e5000 crashed",
            "gateway gw-e5000 restarted",
        ]


class TestTransportFailures:
    def test_wan_cache_invalidated_on_failure(self):
        tb = build_testbed()
        tm = TransportModel(net=tb.net)
        tm.wan("t3e-600", "sp2")
        assert tm._wan_cache
        tb.wan_link.set_up(False)
        assert not tm._wan_cache  # invalidation hook fired

    def test_dead_path_raises_transport_error(self):
        tb = build_testbed()
        tm = TransportModel(
            net=tb.net, retry=RetryPolicy(max_attempts=3, backoff=0.01)
        )
        FaultInjector(tb.net).link_down(tb.wan_link)
        tb.net.env.run(until=tb.net.env.now + 1e-6)  # let the fault apply
        with pytest.raises(TransportError) as err:
            tm.wan("t3e-600", "sp2")
        assert err.value.attempts == 3
        assert err.value.src_host == "t3e-600"

    def test_retry_backoff_survives_transient_outage(self):
        """A link-up scheduled inside the backoff window heals the send:
        retries advance the network clock, so the path recovers."""
        tb = build_testbed()
        tm = TransportModel(
            net=tb.net, retry=RetryPolicy(max_attempts=5, backoff=0.05)
        )
        FaultInjector(tb.net).link_down(tb.wan_link, at=0.0, duration=0.1)
        tb.net.env.run(until=tb.net.env.now + 1e-6)
        cost = tm.wan("t3e-600", "sp2")  # must succeed via retries
        assert cost.bandwidth > 0

    def test_post_failure_costs_not_stale(self):
        """After an OC-48 → OC-12 style change the cached WAN cost must
        be recomputed, not served stale."""
        tb = build_testbed()
        tm = TransportModel(net=tb.net)
        before = tm.wan("onyx2-juelich", "onyx2-gmd")
        # Degrade the Jülich attachment: halve the link rate via a state
        # change (down/up) plus direct rate edit.
        link = tb.net.nodes["onyx2-juelich"].link_to("sw-juelich")
        link.rate = link.rate / 100.0
        tb.net.invalidate_routes()
        after = tm.wan("onyx2-juelich", "onyx2-gmd")
        assert after.bandwidth < before.bandwidth

    def test_metampi_send_over_dead_wan_raises_rankfailed(self):
        """End to end: a rank sending across a dead WAN surfaces a typed
        TransportError through join() instead of deadlocking."""
        tb = build_testbed()
        FaultInjector(tb.net).link_down(tb.wan_link)
        tb.net.env.run(until=tb.net.env.now + 1e-6)
        transport = TransportModel(
            net=tb.net, retry=RetryPolicy(max_attempts=2, backoff=0.01)
        )
        mc = MetaMPI(transport=transport, wallclock_timeout=30.0)
        mc.add_machine(CRAY_T3E_600, ranks=1)
        mc.add_machine(IBM_SP2, ranks=1)

        def main(comm):
            if comm.rank == 0:
                comm.send([1, 2, 3], dest=1)
            else:
                comm.recv(source=0)

        with pytest.raises(RankFailed) as err:
            mc.run(main)
        original = err.value.original
        assert isinstance(original, TransportError)
        assert original.src_rank == 0
        assert original.dst_rank == 1
