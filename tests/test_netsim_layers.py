"""Tests for SDH levels, classical IP accounting, and HiPPI framing."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.hippi import (
    HIPPI_BURST_BYTES,
    HIPPI_RATE,
    HippiChannel,
    hippi_efficiency,
    hippi_wire_bytes,
    raw_block_throughput,
)
from repro.netsim.ip import ClassicalIP, DEFAULT_ATM_MTU, ETHERNET_MTU, TESTBED_MTU
from repro.netsim.sdh import STM1, STM4, STM16, atm_cell_rate, level_for


class TestSdh:
    def test_standard_line_rates(self):
        assert STM1.line_mbit == 155.52
        assert STM4.line_mbit == 622.08
        assert STM16.line_mbit == 2488.32

    def test_payload_below_line(self):
        for lvl in (STM1, STM4, STM16):
            assert lvl.payload_mbit < lvl.line_mbit
            assert 0.02 < lvl.overhead_fraction < 0.05

    def test_lookup_by_both_names(self):
        assert level_for("STM-4") is STM4
        assert level_for("OC-12") is STM4
        assert level_for("OC-48") is STM16

    def test_unknown_level(self):
        with pytest.raises(KeyError):
            level_for("OC-192000")

    def test_oc48_is_the_2_4_gbit_link(self):
        assert STM16.line_rate == pytest.approx(2.48832e9)

    def test_cell_rate(self):
        # OC-12 payload 599.04 Mbit/s over 424-bit cells ≈ 1.41 Mcell/s
        assert atm_cell_rate(STM4) == pytest.approx(599.04e6 / 424)


class TestClassicalIP:
    def test_testbed_mtu_is_64k(self):
        assert TESTBED_MTU == 65536

    def test_mss_excludes_headers(self):
        ip = ClassicalIP(DEFAULT_ATM_MTU)
        assert ip.max_segment == 9180 - 40

    def test_segments_exact_split(self):
        ip = ClassicalIP(1040)  # MSS 1000
        assert ip.segments(2500) == [1000, 1000, 500]

    def test_segments_empty_transfer(self):
        assert ClassicalIP().segments(0) == []

    def test_segments_negative_rejected(self):
        with pytest.raises(ValueError):
            ClassicalIP().segments(-5)

    def test_mtu_too_small_rejected(self):
        with pytest.raises(ValueError):
            ClassicalIP(40)

    def test_mtu_over_ipv4_limit_rejected(self):
        with pytest.raises(ValueError):
            ClassicalIP(65537)

    def test_goodput_fraction_ordering(self):
        """Bigger MTU -> better protocol efficiency."""
        f1500 = ClassicalIP(ETHERNET_MTU).goodput_fraction()
        f9180 = ClassicalIP(DEFAULT_ATM_MTU).goodput_fraction()
        f64k = ClassicalIP(TESTBED_MTU).goodput_fraction()
        assert f1500 < f9180 < f64k < 48 / 53

    def test_64k_goodput_fraction_value(self):
        # 65496 payload / (1366 cells * 53 = 72398 wire) ≈ 0.9047
        assert ClassicalIP(TESTBED_MTU).goodput_fraction() == pytest.approx(
            0.9047, abs=2e-3
        )

    @given(nbytes=st.integers(1, 10_000_000), mtu=st.sampled_from(
        [ETHERNET_MTU, DEFAULT_ATM_MTU, TESTBED_MTU]))
    def test_segments_conserve_bytes_property(self, nbytes, mtu):
        ip = ClassicalIP(mtu)
        segs = ip.segments(nbytes)
        assert sum(segs) == nbytes
        assert all(0 < s <= ip.max_segment for s in segs)
        # All but the last are full-size.
        assert all(s == ip.max_segment for s in segs[:-1])

    def test_ack_wire_bytes_is_two_cells(self):
        # 40 + 8 LLC/SNAP + 8 trailer = 56 > 48: two cells.
        assert ClassicalIP().ack_wire_bytes() == 2 * 53


class TestHippi:
    def test_rate_is_800_mbit(self):
        assert HIPPI_RATE == 800e6

    def test_wire_rounds_to_bursts(self):
        assert hippi_wire_bytes(1) == HIPPI_BURST_BYTES
        assert hippi_wire_bytes(HIPPI_BURST_BYTES) == 2 * HIPPI_BURST_BYTES

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hippi_wire_bytes(-1)

    def test_large_block_efficiency_near_one(self):
        assert hippi_efficiency(1024 * 1024) > 0.99

    def test_zero_payload_efficiency(self):
        assert hippi_efficiency(0) == 0.0

    def test_peak_throughput_with_1mbyte_blocks(self):
        """Paper: 'peak performance of 800 Mbit/s when a low-level protocol
        and large transfer blocks (1 MByte or more) are used'."""
        rate = raw_block_throughput(1024 * 1024)
        assert 790e6 < rate < 800e6

    def test_small_blocks_fall_well_below_peak(self):
        assert raw_block_throughput(4096) < 0.75 * HIPPI_RATE

    def test_channel_serialization_delay(self):
        ch = HippiChannel("test")
        one_mb = 1024 * 1024
        t = ch.serialization_delay(one_mb)
        assert t == pytest.approx(hippi_wire_bytes(one_mb) * 8 / 800e6)
