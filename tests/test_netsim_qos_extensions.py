"""Tests for ATM QoS (CBR VC admission) and the Section-5 extended
testbed topology."""

import pytest

from repro.netsim import build_testbed
from repro.netsim.extensions import build_extended_testbed
from repro.netsim.flows import PingFlow
from repro.netsim.qos import AdmissionError, QosManager
from repro.netsim.sdh import STM4
from repro.util.units import MBIT


class TestQos:
    def test_reserve_and_release(self):
        tb = build_testbed()
        qos = QosManager(tb.net)
        vc = qos.reserve("onyx2-gmd", "onyx2-juelich", 270 * MBIT)
        assert vc.rate == 270e6
        assert vc.path[0] == "onyx2-gmd" and vc.path[-1] == "onyx2-juelich"
        qos.release(vc)
        assert qos.reservations == {}

    def test_admission_rejects_oversubscription(self):
        tb = build_testbed()
        qos = QosManager(tb.net)
        qos.reserve("onyx2-gmd", "onyx2-juelich", 300 * MBIT)
        with pytest.raises(AdmissionError):
            qos.reserve("onyx2-gmd", "onyx2-juelich", 300 * MBIT)

    def test_direction_independence(self):
        """Full-duplex links: reservations in opposite directions do not
        compete."""
        tb = build_testbed()
        qos = QosManager(tb.net)
        qos.reserve("onyx2-gmd", "onyx2-juelich", 500 * MBIT)
        # Reverse direction still has full capacity.
        qos.reserve("onyx2-juelich", "onyx2-gmd", 500 * MBIT)

    def test_headroom_enforced(self):
        tb = build_testbed()
        qos = QosManager(tb.net, headroom=0.5)
        link = tb.net.nodes["onyx2-gmd"].link_to("sw-juelich") if False else None
        avail = qos.path_available("onyx2-gmd", "onyx2-juelich")
        assert avail <= 0.5 * STM4.payload_rate

    def test_release_restores_capacity(self):
        tb = build_testbed()
        qos = QosManager(tb.net)
        before = qos.path_available("onyx2-gmd", "onyx2-juelich")
        vc = qos.reserve("onyx2-gmd", "onyx2-juelich", 100 * MBIT)
        assert qos.path_available("onyx2-gmd", "onyx2-juelich") == pytest.approx(
            before - 100e6
        )
        qos.release(vc)
        assert qos.path_available("onyx2-gmd", "onyx2-juelich") == pytest.approx(
            before
        )

    def test_shared_backbone_accounting(self):
        """Two VCs between different host pairs share the WAN link."""
        tb = build_testbed()
        qos = QosManager(tb.net)
        qos.reserve("onyx2-juelich", "onyx2-gmd", 400 * MBIT)
        qos.reserve("frontend", "e500-gmd", 100 * MBIT)
        assert qos.reserved_on("wan-oc48", "sw-juelich") == pytest.approx(500e6)

    def test_invalid_inputs(self):
        tb = build_testbed()
        with pytest.raises(ValueError):
            QosManager(tb.net, headroom=1.5)
        qos = QosManager(tb.net)
        with pytest.raises(ValueError):
            qos.reserve("onyx2-gmd", "onyx2-juelich", 0.0)
        with pytest.raises(KeyError):
            qos.release(
                type("FakeVc", (), {"vc_id": 999})()
            )


class TestExtendedTestbed:
    @pytest.fixture(scope="class")
    def ext(self):
        return build_extended_testbed()

    def test_new_sites_present(self, ext):
        for host in ("dlr", "uni-cologne", "uni-bonn", "media-arts-cologne"):
            assert host in ext.net.nodes

    def test_base_topology_intact(self, ext):
        assert "t3e-600" in ext.net.nodes
        assert ext.net.shortest_path("t3e-600", "sp2")

    def test_cologne_sites_behind_dark_fibre(self, ext):
        path = ext.net.shortest_path("uni-cologne", "e500-gmd")
        assert "sw-cologne" in path
        assert "sw-gmd" in path

    def test_bonn_link_is_622(self, ext):
        link = ext.net.nodes["uni-bonn"].link_to("sw-gmd")
        assert link.rate == pytest.approx(STM4.payload_rate)

    def test_new_sites_reach_juelich(self, ext):
        rtt = PingFlow(ext.net, "uni-bonn", "t3e-600", count=3).run()
        assert 0 < rtt < 0.05

    def test_dark_fibre_carries_two_d1_feeds(self, ext):
        """The TV-production feasibility: two D1 cameras from Cologne to
        the GMD fit; a third overruns the compositor's 622 attachment."""
        qos = QosManager(ext.net)
        qos.reserve("uni-cologne", "e500-gmd", 270 * MBIT)
        qos.reserve("dlr", "e500-gmd", 270 * MBIT)
        with pytest.raises(AdmissionError):
            qos.reserve("media-arts-cologne", "e500-gmd", 270 * MBIT)

    def test_oc12_variant(self):
        ext = build_extended_testbed(oc48=False)
        # backbone and dark fibre at OC-12 payload rates
        wan = ext.net.nodes["sw-juelich"].link_to("sw-gmd")
        assert wan.rate == pytest.approx(STM4.payload_rate)
