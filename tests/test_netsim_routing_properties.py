"""Property tests validating the network's routing against networkx on
random topologies, plus conservation properties of the DES."""

import networkx as nx
import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netsim.core import Host, Network, PlainFraming
from repro.netsim.flows import BulkTransfer
from repro.netsim.ip import ClassicalIP
from repro.sim import Environment

SLOW = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_connected_graph(n_nodes: int, extra_edges: int, seed: int) -> nx.Graph:
    """A random connected graph: spanning tree + extra random edges."""
    rng = np.random.default_rng(seed)
    g = nx.Graph()
    g.add_nodes_from(range(n_nodes))
    order = rng.permutation(n_nodes)
    for i in range(1, n_nodes):
        g.add_edge(int(order[i]), int(order[rng.integers(0, i)]))
    for _ in range(extra_edges):
        a, b = rng.integers(0, n_nodes, size=2)
        if a != b:
            g.add_edge(int(a), int(b))
    return g


def build_network(g: nx.Graph) -> Network:
    env = Environment()
    net = Network(env)
    for node in g.nodes:
        net.add(Host(env, f"h{node}"))
    for a, b in g.edges:
        net.link(f"h{a}", f"h{b}", rate=1e9, framing=PlainFraming(0))
    return net


class TestRoutingAgainstNetworkx:
    @given(
        n=st.integers(3, 20),
        extra=st.integers(0, 15),
        seed=st.integers(0, 500),
    )
    @SLOW
    def test_shortest_path_lengths_match_property(self, n, extra, seed):
        """Property: our BFS path length equals networkx's on any
        connected graph, for a random source/target pair."""
        g = random_connected_graph(n, extra, seed)
        net = build_network(g)
        rng = np.random.default_rng(seed + 1)
        src, dst = rng.choice(n, size=2, replace=False)
        ours = net.shortest_path(f"h{src}", f"h{dst}")
        theirs = nx.shortest_path_length(g, int(src), int(dst))
        assert len(ours) - 1 == theirs

    @given(n=st.integers(3, 15), seed=st.integers(0, 200))
    @SLOW
    def test_next_hop_consistency_property(self, n, seed):
        """Property: following next_hop() step by step reaches the
        destination in exactly the shortest-path length."""
        g = random_connected_graph(n, 5, seed)
        net = build_network(g)
        src, dst = "h0", f"h{n - 1}"
        expected = len(net.shortest_path(src, dst)) - 1
        cur = src
        hops = 0
        while cur != dst:
            cur = net.next_hop(cur, dst)
            hops += 1
            assert hops <= n  # no loops
        assert hops == expected

    @given(n=st.integers(4, 12), extra=st.integers(2, 10), seed=st.integers(0, 200))
    @SLOW
    def test_permuted_construction_identical_routes_property(self, n, extra, seed):
        """Regression: routing is a pure function of the topology, never
        of construction order.  Building the same graph with its edges
        (and their endpoint orientations) permuted must produce the
        identical route for every node pair."""
        g = random_connected_graph(n, extra, seed)
        edges = list(g.edges)

        def build(edge_list, flips):
            env = Environment()
            net = Network(env)
            for node in g.nodes:
                net.add(Host(env, f"h{node}"))
            for (a, b), flip in zip(edge_list, flips):
                if flip:
                    a, b = b, a
                net.link(f"h{a}", f"h{b}", rate=1e9, framing=PlainFraming(0))
            return net

        rng = np.random.default_rng(seed + 42)
        net1 = build(edges, [False] * len(edges))
        order = rng.permutation(len(edges))
        net2 = build(
            [edges[i] for i in order],
            rng.integers(0, 2, size=len(edges)).astype(bool),
        )
        for s in g.nodes:
            for d in g.nodes:
                if s == d:
                    continue
                assert net1.shortest_path(f"h{s}", f"h{d}") == (
                    net2.shortest_path(f"h{s}", f"h{d}")
                )
                assert net1.next_hop(f"h{s}", f"h{d}") == (
                    net2.next_hop(f"h{s}", f"h{d}")
                )

    def test_route_cache_consistent_after_new_links(self):
        env = Environment()
        net = Network(env)
        for name in ("a", "b", "c"):
            net.add(Host(env, name))
        net.link("a", "b", 1e9)
        net.link("b", "c", 1e9)
        assert net.next_hop("a", "c") == "b"
        net.link("a", "c", 1e9)  # direct shortcut invalidates the cache
        assert net.next_hop("a", "c") == "c"


class TestConservation:
    @given(
        nbytes=st.integers(1, 500_000),
        mtu=st.sampled_from([1500, 9180, 65536]),
    )
    @SLOW
    def test_transfer_byte_conservation_property(self, nbytes, mtu):
        """Property: every application byte sent is received, once."""
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", rate=1e9, framing=PlainFraming(0))
        bt = BulkTransfer(net, "a", "b", nbytes, ip=ClassicalIP(mtu))
        bt.run()
        assert bt._received == nbytes
        assert bt._acked == nbytes

    @given(nbytes=st.integers(1000, 200_000))
    @SLOW
    def test_wire_bytes_at_least_ip_bytes_property(self, nbytes):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        link = net.link("a", "b", rate=1e9, framing=PlainFraming(10))
        ip = ClassicalIP(9180)
        BulkTransfer(net, "a", "b", nbytes, ip=ip).run()
        segments = ip.segments(nbytes)
        min_wire = sum(ip.datagram_bytes(s) for s in segments)
        assert link.tx_bytes["a"] >= min_wire
