"""Tests for the TCP model and traffic flows, including agreement between
the closed-form prediction and the discrete-event measurement."""

import pytest

from repro.netsim.core import Host, Network, PlainFraming
from repro.netsim.faults import FaultInjector
from repro.netsim.flows import BulkTransfer, CbrFlow, PingFlow
from repro.netsim.ip import ClassicalIP, TESTBED_MTU
from repro.netsim.tcp import (
    PathCharacterization,
    TcpModel,
    characterize_path,
    tcp_loss_throughput_bound,
    tcp_steady_throughput,
)
from repro.sim import Environment


def two_hosts(rate=1e9, propagation=1e-3, **host_kw):
    env = Environment()
    net = Network(env)
    net.add(Host(env, "a", **host_kw))
    net.add(Host(env, "b", **host_kw))
    net.link("a", "b", rate=rate, propagation=propagation, framing=PlainFraming(0))
    return net


class TestBulkTransfer:
    def test_simple_transfer_completes(self):
        net = two_hosts()
        bt = BulkTransfer(net, "a", "b", nbytes=1_000_000)
        rate = bt.run()
        assert rate > 0
        assert bt._received == 1_000_000

    def test_throughput_approaches_wire_rate(self):
        net = two_hosts(rate=1e9, propagation=1e-6)
        ip = ClassicalIP(TESTBED_MTU)
        bt = BulkTransfer(net, "a", "b", nbytes=50_000_000, ip=ip)
        rate = bt.run()
        # PlainFraming(0): goodput ≈ rate * mss/ip_bytes minus startup
        assert rate == pytest.approx(1e9 * ip.max_segment / TESTBED_MTU, rel=0.02)

    def test_window_limits_throughput(self):
        # long fat pipe: rtt ~ 20 ms, window 64 KByte -> ~26 Mbit/s
        net = two_hosts(rate=1e9, propagation=10e-3)
        bt = BulkTransfer(
            net, "a", "b", nbytes=10_000_000,
            ip=ClassicalIP(9180), window_bytes=65536,
        )
        rate = bt.run()
        expected = 65536 * 8 / 0.020
        assert rate == pytest.approx(expected, rel=0.1)

    def test_des_matches_analytic_prediction(self):
        net = two_hosts(rate=622e6, propagation=0.5e-3, cpu_per_packet=150e-6)
        ip = ClassicalIP(TESTBED_MTU)
        predicted = tcp_steady_throughput(net, "a", "b", ip)
        bt = BulkTransfer(net, "a", "b", nbytes=60_000_000, ip=ip)
        measured = bt.run()
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_slow_start_converges_to_same_rate(self):
        net = two_hosts(rate=1e9, propagation=1e-4)
        bt = BulkTransfer(
            net, "a", "b", nbytes=40_000_000,
            ip=ClassicalIP(TESTBED_MTU), slow_start=True,
        )
        rate = bt.run()
        net2 = two_hosts(rate=1e9, propagation=1e-4)
        bt2 = BulkTransfer(
            net2, "a", "b", nbytes=40_000_000,
            ip=ClassicalIP(TESTBED_MTU), slow_start=False,
        )
        rate2 = bt2.run()
        assert rate == pytest.approx(rate2, rel=0.1)

    def test_invalid_size_rejected(self):
        net = two_hosts()
        with pytest.raises(ValueError):
            BulkTransfer(net, "a", "b", nbytes=0)

    def test_throughput_before_completion_raises(self):
        net = two_hosts()
        bt = BulkTransfer(net, "a", "b", nbytes=1000)
        with pytest.raises(RuntimeError):
            _ = bt.throughput


class TestCharacterization:
    def test_stage_costs_present(self):
        net = two_hosts(cpu_per_packet=1e-4, io_bus_rate=500e6)
        char = characterize_path(net, "a", "b", ClassicalIP(9180))
        names = set(char.stages)
        assert "a.stack" in names and "b.stack" in names
        assert "a.iobus" in names
        assert any(n.endswith(".wire") for n in names)

    def test_bottleneck_identification(self):
        net = two_hosts(rate=10e6)  # slow wire dominates
        char = characterize_path(net, "a", "b", ClassicalIP(9180))
        assert char.bottleneck_stage.endswith(".wire")

    def test_tcp_model_bundles_prediction(self):
        net = two_hosts()
        model = TcpModel(ip=ClassicalIP(9180), window_bytes=1 << 20)
        assert model.predicted_throughput(net, "a", "b") > 0

    def test_degenerate_free_path_is_well_defined(self):
        """All-zero-cost hosts on an infinite-rate wire: no stages at
        all, which used to crash ``max()`` on the empty dict."""
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", rate=float("inf"), framing=PlainFraming(0))
        char = characterize_path(net, "a", "b", ClassicalIP(9180))
        assert char.stages == {}
        assert char.bottleneck_stage == "none"
        assert char.per_packet_time == 0.0
        assert char.pipeline_rate() == float("inf")
        assert tcp_steady_throughput(net, "a", "b", ClassicalIP(9180)) > 0

    def test_empty_characterization_is_well_defined(self):
        char = PathCharacterization()
        assert char.bottleneck_stage == "none"
        assert char.per_packet_time == 0.0

    def test_self_path_raises_clear_error(self):
        net = two_hosts()
        with pytest.raises(ValueError, match="self-path"):
            characterize_path(net, "a", "a", ClassicalIP(9180))


class TestLossBound:
    def _net(self):
        return two_hosts(rate=622e6, propagation=0.5e-3, cpu_per_packet=150e-6)

    def test_zero_loss_degenerates_to_steady_state(self):
        net = self._net()
        ip = ClassicalIP(9180)
        assert tcp_loss_throughput_bound(
            net, "a", "b", ip, 0.0
        ) == tcp_steady_throughput(net, "a", "b", ip)

    def test_total_loss_is_zero_goodput(self):
        """The raw Mathis form reports a positive goodput even at 100%
        loss; the bound must clamp to 0 there."""
        net = self._net()
        assert tcp_loss_throughput_bound(net, "a", "b", ClassicalIP(9180), 1.0) == 0.0

    def test_monotone_in_loss_rate(self):
        net = self._net()
        ip = ClassicalIP(9180)
        rates = [
            tcp_loss_throughput_bound(net, "a", "b", ip, p)
            for p in (0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0)
        ]
        assert all(hi >= lo for hi, lo in zip(rates, rates[1:]))
        assert rates[0] > 0 and rates[-1] == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 1.5, 2.0])
    def test_out_of_range_rates_rejected(self, bad):
        net = self._net()
        with pytest.raises(ValueError, match="loss_rate"):
            tcp_loss_throughput_bound(net, "a", "b", ClassicalIP(9180), bad)


class TestRttSampleGuard:
    def test_two_flow_loss_run_survives_pruned_send_records(self):
        """Regression for the ``_sample_rtt`` KeyError family: two
        competing flows under seeded random loss exercise cumulative
        ACKs arriving for segments whose send records are pruned (and
        reordering from retransmissions); the transfers must complete
        and the bookkeeping must stay window-sized."""
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "c"))
        net.add(Host(env, "b"))
        net.link("a", "b", rate=200e6, propagation=1e-3, framing=PlainFraming(0))
        net.link("c", "b", rate=200e6, propagation=1e-3, framing=PlainFraming(0))
        for link in net.links.values():
            FaultInjector(net, seed=7).random_loss(link, 0.01)
        flows = [
            BulkTransfer(
                net, src, "b", nbytes=4_000_000, ip=ClassicalIP(9180),
                window_bytes=256 * 1024, name=f"lossy-{src}",
            )
            for src in ("a", "c")
        ]
        for flow in flows:
            env.run(until=flow.done)
        for flow in flows:
            assert flow.throughput > 0
            assert flow.retransmits > 0  # losses actually happened
            # Pruning keeps records bounded by the window, not the
            # whole transfer's segment count.
            assert len(flow._sent_at) < len(flow._payloads)


class TestCbrFlow:
    def test_all_frames_arrive_on_fast_link(self):
        net = two_hosts(rate=1e9, propagation=1e-4)
        flow = CbrFlow(
            net, "a", "b", frame_bytes=100_000, interval=1e-2, n_frames=20
        ).run()
        assert flow.frames_received == 20
        assert flow.frames_lost == 0

    def test_interarrival_matches_source_interval(self):
        net = two_hosts(rate=1e9, propagation=1e-4)
        flow = CbrFlow(
            net, "a", "b", frame_bytes=100_000, interval=5e-3, n_frames=30
        ).run()
        assert flow.interarrival.mean == pytest.approx(5e-3, rel=0.01)
        assert flow.jitter < 1e-6  # deterministic pipeline: no jitter

    def test_delivered_rate(self):
        net = two_hosts(rate=1e9, propagation=1e-4)
        flow = CbrFlow(
            net, "a", "b", frame_bytes=125_000, interval=1e-2, n_frames=30
        ).run()
        # 125 kB / 10 ms = 100 Mbit/s
        assert flow.delivered_rate == pytest.approx(100e6, rel=0.02)

    def test_oversubscribed_link_drops_frames(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", rate=50e6, framing=PlainFraming(0), queue_packets=4)
        # offered 100 Mbit/s onto a 50 Mbit/s link with a tiny queue
        flow = CbrFlow(
            net, "a", "b", frame_bytes=125_000, interval=1e-2, n_frames=40
        ).run()
        assert flow.frames_lost > 0


class TestPingFlow:
    def test_rtt_measurement(self):
        net = two_hosts(rate=1e9, propagation=2e-3)
        rtt = PingFlow(net, "a", "b", count=5).run()
        assert rtt == pytest.approx(4e-3, rel=0.05)

    def test_all_pings_answered(self):
        net = two_hosts()
        flow = PingFlow(net, "a", "b", count=8)
        flow.run()
        assert flow.rtt.n == 8
