"""Tests that the Figure-1 testbed reproduces the paper's Section-2
measurements (experiment E2)."""

import pytest

from repro.netsim import BulkTransfer, ClassicalIP, PingFlow, build_testbed
from repro.netsim.hippi import raw_block_throughput
from repro.netsim.ip import DEFAULT_ATM_MTU, ETHERNET_MTU, TESTBED_MTU
from repro.netsim.tcp import characterize_path, tcp_steady_throughput

IP64K = ClassicalIP(TESTBED_MTU)


@pytest.fixture()
def tb():
    return build_testbed()


def test_topology_has_all_figure1_nodes(tb):
    expected = {
        "t3e-600", "t3e-1200", "t90", "gw-o200", "gw-ultra30",
        "sw-juelich", "sw-gmd", "gw-e5000", "sp2", "onyx2-gmd",
        "e500-gmd", "onyx2-juelich", "frontend", "hippi-sw-juelich",
    }
    assert expected <= set(tb.net.nodes)


def test_wan_path_goes_through_both_switches_and_gateways(tb):
    path = tb.net.shortest_path("t3e-600", "sp2")
    assert path[0] == "t3e-600" and path[-1] == "sp2"
    for required in ("sw-juelich", "sw-gmd", "gw-e5000"):
        assert required in path


def test_local_cray_tcp_over_430_mbit(tb):
    """Paper: 'transfer rates of more than 430 Mbit/s are achieved within
    the local Cray complex in Jülich when an MTU of 64 KByte is used'."""
    bt = BulkTransfer(tb.net, "t3e-600", "t3e-1200", 40 * 1024 * 1024, ip=IP64K)
    rate = bt.run()
    assert 430e6 < rate < 470e6


def test_wan_t3e_sp2_over_260_mbit(tb):
    """Paper: 'a throughput of more than 260 Mbit/s between the Cray T3E in
    Jülich and the IBM SP2 in Sankt Augustin'."""
    bt = BulkTransfer(tb.net, "t3e-600", "sp2", 40 * 1024 * 1024, ip=IP64K)
    rate = bt.run()
    assert 260e6 < rate < 300e6


def test_sp2_bottleneck_is_its_io_system(tb):
    """Paper: the WAN limit is 'mainly due to the limitations of the
    I/O-system of the microchannel-based SP-nodes'."""
    char = characterize_path(tb.net, "t3e-600", "sp2", IP64K)
    assert char.bottleneck_stage == "sp2.iobus"


def test_hippi_peak_800_mbit_with_large_blocks():
    rate = raw_block_throughput(1024 * 1024)
    assert 0.98 * 800e6 < rate <= 800e6


def test_622_workstation_path_protocol_ceiling(tb):
    """Onyx2↔Onyx2 over 622 ATM: wire-limited near 599.04 * 48/53 * tcp
    overhead ≈ 540 Mbit/s."""
    rate = tcp_steady_throughput(tb.net, "onyx2-gmd", "onyx2-juelich", IP64K)
    assert 500e6 < rate < 560e6


def test_oc48_backbone_not_the_bottleneck(tb):
    char = characterize_path(tb.net, "t3e-600", "sp2", IP64K)
    wan_stage = [v for k, v in char.stages.items() if k.startswith("wan-")]
    assert wan_stage and wan_stage[0] < char.per_packet_time


def test_oc12_era_backbone_becomes_tighter():
    """First-year OC-12 backbone: the WAN wire is ~4x slower than OC-48."""
    tb48 = build_testbed(oc48=True)
    tb12 = build_testbed(oc48=False)
    c48 = characterize_path(tb48.net, "t3e-600", "sp2", IP64K)
    c12 = characterize_path(tb12.net, "t3e-600", "sp2", IP64K)
    w48 = [v for k, v in c48.stages.items() if k.startswith("wan-")][0]
    w12 = [v for k, v in c12.stages.items() if k.startswith("wan-")][0]
    assert w12 == pytest.approx(4 * w48, rel=0.01)


def test_wan_rtt_dominated_by_distance(tb):
    """100 km of fibre gives ≥1 ms round trip before protocol costs."""
    rtt = PingFlow(tb.net, "frontend", "onyx2-gmd", count=4).run()
    assert rtt > 1e-3
    assert rtt < 10e-3


def test_small_mtu_collapses_throughput(tb):
    """The testbed's raison d'être for 64 KByte MTUs: per-packet host cost
    dominates at small MTU."""
    r64k = tcp_steady_throughput(tb.net, "t3e-600", "t3e-1200", IP64K)
    r1500 = tcp_steady_throughput(
        tb.net, "t3e-600", "t3e-1200", ClassicalIP(ETHERNET_MTU)
    )
    assert r1500 < r64k / 20


def test_mtu_ordering_monotone(tb):
    rates = [
        tcp_steady_throughput(tb.net, "t3e-600", "t3e-1200", ClassicalIP(m))
        for m in (ETHERNET_MTU, DEFAULT_ATM_MTU, TESTBED_MTU)
    ]
    assert rates == sorted(rates)


def test_all_hosts_reach_all_hosts(tb):
    hosts = tb.all_hosts
    for src in hosts:
        for dst in hosts:
            if src != dst:
                assert tb.net.shortest_path(src, dst)


def test_frontend_attached_at_155(tb):
    link = tb.net.nodes["frontend"].link_to("sw-juelich")
    assert link.rate == pytest.approx(149.76e6)
