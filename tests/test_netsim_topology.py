"""Multi-site topology builder, parallel-link routing, and failover.

Covers the topology layer (:mod:`repro.netsim.topology`), the min-cost
deterministic routing with redundant parallel links, the reroute
detection delay, and the BulkTransfer stall-failover contract: a stall
verdict is reserved for a path with no live alternative.
"""

import pytest

from repro.netsim.core import Host, Link, Network, PlainFraming, route_cost
from repro.netsim.faults import FaultInjector
from repro.netsim.flows import BulkTransfer, CbrFlow, TransferStalled
from repro.netsim.ip import ClassicalIP
from repro.netsim.topology import (
    TopologyBuilder,
    build_dual_ring,
    build_grid,
    build_ring,
)
from repro.sim import Environment

IP = ClassicalIP(9180)


def diamond(reroute_delay=0.0, rate=622e6):
    """a == b/c == d: two equal-cost disjoint 2-hop paths."""
    env = Environment()
    net = Network(env)
    for name in ("a", "b", "c", "d"):
        net.add(Host(env, name))
    net.link("a", "b", rate, 1e-4)
    net.link("a", "c", rate, 1e-4)
    net.link("b", "d", rate, 1e-4)
    net.link("c", "d", rate, 1e-4)
    net.reroute_delay = reroute_delay
    return env, net


# ---------------------------------------------------------------------------
# Builder structure


class TestTopologyBuilder:
    def test_site_layout_and_attachment(self):
        b = TopologyBuilder()
        site = b.add_site("left", hosts=3)
        assert site.switch == "sw-left"
        assert site.hosts == ["left-h0", "left-h1", "left-h2"]
        assert site.gateway is None
        assert b.attachment("left") == "sw-left"

    def test_gateway_site_routes_hosts_through_gateway(self):
        b = TopologyBuilder()
        b.add_site("l", hosts=1, gateway=True)
        b.add_site("r", hosts=1)
        b.trunk("l", "r")
        tb = b.build()
        path, _ = tb.net.path_links("l-h0", "r-h0")
        assert path == ["l-h0", "gw-l", "sw-l", "sw-r", "r-h0"]

    def test_duplicate_site_rejected(self):
        b = TopologyBuilder()
        b.add_site("x")
        with pytest.raises(ValueError, match="duplicate site"):
            b.add_site("x")

    def test_unknown_site_rejected(self):
        b = TopologyBuilder()
        with pytest.raises(KeyError, match="unknown site"):
            b.add_host("nope", "h")
        with pytest.raises(KeyError):
            b.attachment("nope")

    def test_trunks_are_named_and_recorded(self):
        b = TopologyBuilder()
        b.add_site("l", hosts=1)
        b.add_site("r", hosts=1)
        ln = b.trunk("l", "r")
        assert ln.name == "trunk-l--r"
        tb = b.build()
        assert tb.trunks == ["trunk-l--r"]
        assert tb.trunk_links() == [tb.net.links["trunk-l--r"]]

    def test_parallel_trunks_distinct_names(self):
        b = TopologyBuilder()
        b.add_site("l", hosts=1)
        b.add_site("r", hosts=1)
        links = b.parallel_trunks("l", "r", count=3)
        assert [ln.name for ln in links] == [
            "trunk-l--r-p0",
            "trunk-l--r-p1",
            "trunk-l--r-p2",
        ]

    def test_generator_shapes(self):
        ring = build_ring(5, hosts_per_site=1)
        assert len(ring.trunks) == 5
        dual = build_dual_ring(4, hosts_per_site=1)
        assert len(dual.trunks) == 8
        assert len(dual.all_hosts) == 4
        grid = build_grid(3, 2, hosts_per_site=1)
        # 3 rows x 1 horizontal + 2 cols x 2 vertical = 3 + 4
        assert len(grid.trunks) == 3 * 1 + 2 * 2
        with pytest.raises(ValueError):
            build_ring(1)
        with pytest.raises(ValueError):
            build_grid(1, 1)


# ---------------------------------------------------------------------------
# Parallel links and min-cost routing


class TestParallelLinkRouting:
    def test_cheapest_parallel_member_wins(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", 155e6, 1e-4, name="slow")
        fast = net.link("a", "b", 622e6, 1e-4, name="fast")
        assert net.route_link("a", "b") is fast
        assert route_cost(net.links["slow"]) > route_cost(fast)

    def test_equal_cost_parallel_ties_break_by_name(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", 622e6, 1e-4, name="p1")
        p0 = net.link("a", "b", 622e6, 1e-4, name="p0")
        assert net.route_link("a", "b") is p0

    def test_parallel_failover_and_reversion(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        p0 = net.link("a", "b", 622e6, 1e-4, name="p0")
        p1 = net.link("a", "b", 622e6, 1e-4, name="p1")
        assert net.route_link("a", "b") is p0
        p0.set_up(False)
        assert net.route_link("a", "b") is p1
        assert net.reroutes >= 1
        before = net.reroutes
        p0.set_up(True)
        assert net.route_link("a", "b") is p0  # reverts to the tie-winner
        assert net.reroutes > before

    def test_unnamed_duplicate_still_rejected(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", 622e6, name="p0")
        with pytest.raises(ValueError, match="duplicate link"):
            net.link("a", "b", 622e6)
        with pytest.raises(ValueError, match="duplicate link"):
            net.link("b", "a", 622e6)
        # A rejected link must not have attached anywhere.
        assert len(net.nodes["a"].links) == 1
        assert len(net.nodes["b"].links) == 1

    def test_equal_cost_paths_enumeration(self):
        _, net = diamond()
        paths = net.equal_cost_paths("a", "d")
        assert paths == [["a", "b", "d"], ["a", "c", "d"]]
        assert net.shortest_path("a", "d") == paths[0]
        grid = build_grid(2, 2, hosts_per_site=1)
        assert len(grid.net.equal_cost_paths("sw-s00", "sw-s11")) == 2

    def test_dual_ring_bulk_survives_ring_cut(self):
        tb = build_dual_ring(4)
        net = tb.net
        FaultInjector(net, seed=1).link_down(
            "ring0-site0--site1", at=0.005, duration=None
        )
        bt = BulkTransfer(
            net, "site0-h0", "site2-h0", 4_000_000, ip=IP, name="cutbulk"
        )
        rate = bt.run()
        assert rate > 0
        assert net.reroutes > 0
        # The standby ring carried the remainder of the transfer.
        assert sum(net.links["ring1-site0--site1"].tx_packets.values()) > 0


# ---------------------------------------------------------------------------
# Topology-mutation cache invalidation (stale-route bugfix)


class TestMutationInvalidation:
    def test_directly_constructed_link_flushes_routes(self):
        env = Environment()
        net = Network(env)
        for name in ("a", "b", "c"):
            net.add(Host(env, name))
        net.link("a", "b", 622e6)
        net.link("b", "c", 622e6)
        assert net.next_hop("a", "c") == "b"  # warm the caches
        # Bypass Network.link: attach a Link object directly, the way
        # external extensions do.  The network-wide flush must happen on
        # attach, not only via Network.link.
        shortcut = Link(env, net.nodes["a"], net.nodes["c"], 622e6)
        shortcut.network = net
        net.links[shortcut.name] = shortcut
        assert net.next_hop("a", "c") == "c"
        assert net.route_link("a", "c") is shortcut

    def test_new_node_and_links_reroute_resolved_routes(self):
        env = Environment()
        net = Network(env)
        for name in ("a", "b", "c"):
            net.add(Host(env, name))
        net.link("a", "b", 622e6, 1e-3)
        net.link("b", "c", 622e6, 1e-3)
        assert net.shortest_path("a", "c") == ["a", "b", "c"]
        assert net.route_link("a", "c").name == "a--b"
        # Add a cheaper relay after routes resolved.
        net.add(Host(env, "relay"))
        net.link("a", "relay", 2.4e9, 1e-6)
        net.link("relay", "c", 2.4e9, 1e-6)
        assert net.shortest_path("a", "c") == ["a", "relay", "c"]
        assert net.route_link("a", "c").name == "a--relay"


# ---------------------------------------------------------------------------
# Reroute detection delay


class TestRerouteDelay:
    def test_zero_delay_reroutes_synchronously(self):
        env, net = diamond()
        primary = net.route_link("a", "d")
        assert primary.name == "a--b"
        primary.set_up(False)
        assert net.route_link("a", "d").name == "a--c"

    def test_positive_delay_keeps_stale_route_until_flush(self):
        env, net = diamond(reroute_delay=0.05)
        primary = net.route_link("a", "d")
        primary.set_up(False)
        # Established route still points at the dead link until the
        # delayed invalidation fires.
        assert net.route_link("a", "d") is primary
        env.run(until=env.timeout(0.1))
        assert net.route_link("a", "d").name == "a--c"
        assert net.reroutes >= 1

    def test_delayed_detection_loses_frames_synchronous_does_not(self):
        losses = {}
        for delay in (0.0, 0.05):
            env, net = diamond(reroute_delay=delay)
            FaultInjector(net, seed=0).link_down(
                "a--b", at=0.02, duration=None
            )
            cbr = CbrFlow(
                net,
                "a",
                "d",
                frame_bytes=50_000,
                interval=0.005,
                n_frames=30,
                ip=IP,
                name=f"cbr-{delay}",
            )
            env.run(until=cbr.done)
            losses[delay] = cbr.frames_lost
        assert losses[0.0] == 0
        assert losses[0.05] > 0


# ---------------------------------------------------------------------------
# Stall-failover contract (TransferStalled bugfix)


class TestStallFailover:
    def test_transfer_survives_when_alternate_path_lives(self):
        """Detection lag drives the sender through its whole timeout
        budget, but a live alternate path exists: the transfer must fail
        over and complete, never raise TransferStalled."""
        env, net = diamond(reroute_delay=1.0)
        FaultInjector(net, seed=0).link_down("a--b", at=0.01, duration=None)
        bt = BulkTransfer(
            net,
            "a",
            "d",
            2_000_000,
            ip=IP,
            name="survivor",
            min_rto=0.05,
            initial_rto=0.05,
            max_consecutive_timeouts=3,
        )
        rate = bt.run()
        assert rate > 0
        assert bt.failovers > 0
        assert bt.timeouts >= 3

    def test_transfer_stalls_when_no_alternate_path(self):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", 622e6, 1e-4)
        FaultInjector(net, seed=0).link_down("a--b", at=0.01, duration=None)
        bt = BulkTransfer(
            net,
            "a",
            "b",
            2_000_000,
            ip=IP,
            name="doomed",
            min_rto=0.05,
            initial_rto=0.05,
            max_consecutive_timeouts=3,
        )
        with pytest.raises(TransferStalled):
            bt.run()
        assert bt.failovers == 0
