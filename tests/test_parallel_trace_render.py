"""Tests for the domain-decomposed parallel TRACE solver and the
alpha-compositing volume renderer."""

import numpy as np
import pytest

from repro.apps.groundwater import TraceSolver
from repro.apps.groundwater.parallel import parallel_darcy_solve
from repro.apps.groundwater.trace_flow import layered_conductivity
from repro.fire import HeadPhantom
from repro.machines import IBM_SP2
from repro.metampi import MetaMPI
from repro.viz import merge_functional
from repro.viz.render3d import composite_render, render_frame

SHAPE = (8, 12, 24)


def solve_parallel(ranks, conductivity=1e-4, sources=None, shape=SHAPE):
    out = {}

    def main(comm):
        head, stats = parallel_darcy_solve(
            comm, shape, conductivity=conductivity, sources=sources,
            tolerance=1e-10,
        )
        if comm.rank == 0:
            out["head"] = head
            out["stats"] = stats

    mc = MetaMPI(wallclock_timeout=120)
    mc.add_machine(IBM_SP2, ranks=ranks)
    mc.run(main)
    return out["head"], out["stats"]


class TestParallelTrace:
    @pytest.fixture(scope="class")
    def serial(self):
        return TraceSolver(shape=SHAPE).solve(tolerance=1e-10)

    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_matches_serial(self, serial, ranks):
        head, stats = solve_parallel(ranks)
        assert stats.ranks == ranks
        np.testing.assert_allclose(head, serial, atol=1e-7)

    def test_heterogeneous_field(self):
        k = layered_conductivity(SHAPE)
        serial = TraceSolver(shape=SHAPE, conductivity=k).solve(tolerance=1e-10)
        head, _ = solve_parallel(3, conductivity=k)
        np.testing.assert_allclose(head, serial, atol=1e-7)

    def test_sources_distributed_correctly(self):
        src = np.zeros(SHAPE)
        src[5, 6, 12] = 1e-3  # lands on rank >0's slab with 3 ranks
        serial = TraceSolver(shape=SHAPE).solve(src, tolerance=1e-10)
        head, _ = solve_parallel(3, sources=src)
        np.testing.assert_allclose(head, serial, atol=1e-7)

    def test_halo_exchanges_counted(self):
        _, stats = solve_parallel(3)
        # interior rank does 2 exchanges per apply; apply runs once per
        # iteration plus once for the initial residual
        assert stats.halo_exchanges >= stats.iterations

    def test_too_many_ranks_rejected(self):
        from repro.metampi import RankFailed

        def main(comm):
            parallel_darcy_solve(comm, (2, 4, 4))

        mc = MetaMPI(wallclock_timeout=30)
        mc.add_machine(IBM_SP2, ranks=3)
        with pytest.raises(RankFailed):
            mc.run(main)

    def test_converged_residual_reported(self):
        _, stats = solve_parallel(2)
        assert stats.residual < 1e-9


class TestCompositeRender:
    @pytest.fixture(scope="class")
    def volumes(self):
        ph = HeadPhantom()
        hr = ph.highres_anatomy((16, 32, 32))
        corr = np.zeros(ph.shape)
        corr[ph.activation_mask()] = 0.9
        return merge_functional(hr, corr, clip_level=0.5)

    def test_output_shape_and_range(self, volumes):
        anat, func = volumes
        img = composite_render(anat, func)
        assert img.shape == (16, 32, 3)
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_shows_interior_structure(self, volumes):
        """Compositing sees through surfaces where a MIP saturates: the
        composited image has more distinct gray levels."""
        anat, _ = volumes
        comp = composite_render(anat)
        mipped = render_frame(anat)
        assert len(np.unique(np.round(comp[..., 0], 3))) > 20
        # both render something
        assert comp.max() > 0.1 and mipped.max() > 0.1

    def test_functional_highlights(self, volumes):
        anat, func = volumes
        plain = composite_render(anat)
        lit = composite_render(anat, func)
        assert np.any(np.abs(lit - plain) > 0.05)
        assert np.any(lit[..., 0] - lit[..., 2] > 0.05)

    def test_rotation_changes_view(self, volumes):
        anat, _ = volumes
        a = composite_render(anat, azimuth_deg=0.0)
        b = composite_render(anat, azimuth_deg=40.0)
        assert np.abs(a - b).mean() > 1e-4

    def test_grid_mismatch_rejected(self, volumes):
        anat, _ = volumes
        with pytest.raises(ValueError):
            composite_render(anat, np.zeros((2, 2, 2)))

    def test_opacity_scale_effect(self, volumes):
        anat, _ = volumes
        thin = composite_render(anat, opacity_scale=0.01)
        thick = composite_render(anat, opacity_scale=0.3)
        assert thick.mean() != pytest.approx(thin.mean(), rel=0.01)
