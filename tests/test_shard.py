"""repro.shard — partitioner units and sharded-vs-reference identity.

The partitioner tests pin the cut-placement rules on synthetic
topologies (every WAN position on a chain, multi-island merges, the
degenerate one-shard plan).  The identity tests are the subsystem's
contract: a sharded run is *indistinguishable* from the unsharded
reference — same merged metrics and the same delivery tuples — for any
shard count, scheduling mode, and fault schedule.
"""

import pytest

from repro.netsim.core import Host, Network, Switch
from repro.netsim.testbed import WAN_PROPAGATION, build_testbed
from repro.shard import (
    PartitionError,
    partition_network,
    run_workload,
)
from repro.sim import Environment
from repro.telemetry import MetricsRegistry, NullRegistry, instrument_shard_run

WAN = 500e-6  # comfortably above the partitioner's WAN threshold
LOCAL = 2e-6  # comfortably below it


def _chain(names, wan_pairs):
    """A linear host chain; links in ``wan_pairs`` get WAN propagation."""
    env = Environment()
    net = Network(env)
    for name in names:
        net.add(Host(env, name))
    for a, b in zip(names, names[1:]):
        prop = WAN if (a, b) in wan_pairs else LOCAL
        net.link(a, b, 622e6, prop)
    return net


# ---------------------------------------------------------------------------
# Partitioner units


def test_testbed_partitions_at_the_wan_link():
    tb = build_testbed(Environment())
    plan = partition_network(tb.net, 2)
    assert plan.n_shards == 2
    assert [cut.name for cut in plan.cuts] == ["wan-oc48"]
    assert plan.lookahead == pytest.approx(WAN_PROPAGATION)
    # The two sites land on opposite shards, each site kept whole.
    juelich = plan.shard_of("t3e-600")
    gmd = plan.shard_of("sp2")
    assert juelich != gmd
    for node in ("t3e-1200", "t90", "frontend", "onyx2-juelich"):
        assert plan.shard_of(node) == juelich
    for node in ("e500-gmd", "onyx2-gmd"):
        assert plan.shard_of(node) == gmd
    (cut,) = plan.cuts_touching(juelich)
    assert cut.a_shard != cut.b_shard


def test_single_partition_is_degenerate():
    tb = build_testbed(Environment())
    plan = partition_network(tb.net, 1)
    assert plan.n_shards == 1
    assert plan.cuts == ()
    assert plan.lookahead == float("inf")
    assert plan.shards[0] == frozenset(tb.net.nodes)


def test_more_shards_than_wan_islands_caps():
    tb = build_testbed(Environment())
    plan = partition_network(tb.net, 8)
    assert plan.requested == 8
    assert plan.n_shards == 2  # one WAN link -> two islands, no more


def test_no_wan_links_collapses_to_one_shard():
    net = _chain(["a", "b", "c"], wan_pairs=set())
    plan = partition_network(net, 4)
    assert plan.n_shards == 1
    assert plan.cuts == ()


@pytest.mark.parametrize(
    "wan_pairs, expected_islands",
    [
        ({("a", "b")}, [{"a"}, {"b", "c", "d"}]),
        ({("b", "c")}, [{"a", "b"}, {"c", "d"}]),
        ({("c", "d")}, [{"a", "b", "c"}, {"d"}]),
        ({("a", "b"), ("c", "d")}, [{"a"}, {"b", "c"}, {"d"}]),
    ],
)
def test_every_wan_cut_placement(wan_pairs, expected_islands):
    net = _chain(["a", "b", "c", "d"], wan_pairs)
    plan = partition_network(net, len(expected_islands))
    shards = [set(s) for s in plan.shards]
    assert sorted(shards, key=sorted) == sorted(expected_islands, key=sorted)
    # Every cut genuinely crosses shards and sets the lookahead.
    assert len(plan.cuts) == len(wan_pairs)
    for cut in plan.cuts:
        assert plan.shard_of(cut.a) != plan.shard_of(cut.b)
    assert plan.lookahead == pytest.approx(WAN)


def test_three_islands_merged_into_two_shards():
    net = _chain(["a", "b", "c", "d"], {("a", "b"), ("c", "d")})
    plan = partition_network(net, 2)
    assert plan.n_shards == 2
    # All nodes covered exactly once.
    seen = [n for shard in plan.shards for n in shard]
    assert sorted(seen) == ["a", "b", "c", "d"]
    # Only cuts whose endpoints landed on different shards remain.
    for cut in plan.cuts:
        assert plan.shard_of(cut.a) != plan.shard_of(cut.b)


def test_invalid_partition_requests():
    tb = build_testbed(Environment())
    with pytest.raises(PartitionError):
        partition_network(tb.net, 0)
    with pytest.raises(PartitionError):
        partition_network(tb.net, 2, min_cut_propagation=0.0)


def test_partitioner_ignores_link_state():
    # A downed WAN link still defines the cut: partitioning is static.
    tb = build_testbed(Environment())
    tb.wan_link.up = False
    plan = partition_network(tb.net, 2)
    assert plan.n_shards == 2


def test_switches_partition_too():
    env = Environment()
    net = Network(env)
    for name in ("h1", "h2"):
        net.add(Host(env, name))
    for name in ("s1", "s2"):
        net.add(Switch(env, name))
    net.link("h1", "s1", 622e6, LOCAL)
    net.link("s1", "s2", 2.4e9, WAN)
    net.link("s2", "h2", 622e6, LOCAL)
    plan = partition_network(net, 2)
    assert plan.shard_of("h1") == plan.shard_of("s1")
    assert plan.shard_of("h2") == plan.shard_of("s2")
    assert plan.shard_of("s1") != plan.shard_of("s2")


# ---------------------------------------------------------------------------
# Sharded-vs-reference identity (the subsystem's contract)


def _identical(ref, sharded):
    assert sharded.metrics == ref.metrics
    assert sharded.deliveries == ref.deliveries


@pytest.mark.parametrize("shards", [2, 3, 4])
def test_shard_count_never_changes_wan_bulk(shards):
    params = {"mbytes": 2}
    ref = run_workload("wan_bulk", params, shards=1, record=True)
    sharded = run_workload(
        "wan_bulk", params, shards=shards, mode="serial", record=True
    )
    _identical(ref, sharded)
    assert sharded.n_shards == 2  # testbed has exactly two WAN islands
    assert sharded.rounds > 0


def test_shard_identity_multiflow_with_video():
    params = {"mbytes": 2, "n_frames": 3}
    ref = run_workload("wan_multiflow", params, shards=1, record=True)
    sharded = run_workload(
        "wan_multiflow", params, shards=2, mode="serial", record=True
    )
    _identical(ref, sharded)
    # The video receiver lives on the far shard; its metrics must have
    # been merged from there.
    assert "video-d1_frames_received" in sharded.metrics


def test_shard_identity_under_loss_and_outage():
    params = {"mbytes": 2, "loss_rate": 0.02, "outage_at": 0.02, "outage_len": 0.1}
    ref = run_workload("wan_bulk", params, shards=1, record=True)
    sharded = run_workload(
        "wan_bulk", params, shards=2, mode="serial", record=True
    )
    _identical(ref, sharded)
    assert sharded.metrics["retransmits"] > 0  # the faults actually fired


def test_shard_identity_slow_kernel_path():
    params = {"mbytes": 2, "fast_path": False}
    ref = run_workload("wan_bulk", params, shards=1, record=True)
    sharded = run_workload(
        "wan_bulk", params, shards=2, mode="serial", record=True
    )
    _identical(ref, sharded)


def test_process_mode_matches_serial_and_reference():
    params = {"mbytes": 2}
    ref = run_workload("wan_bulk", params, shards=1, record=True)
    serial = run_workload(
        "wan_bulk", params, shards=2, mode="serial", record=True
    )
    try:
        proc = run_workload(
            "wan_bulk", params, shards=2, mode="process", record=True
        )
    except (OSError, ValueError) as exc:  # pragma: no cover - no fork
        pytest.skip(f"process mode unavailable: {exc}")
    _identical(ref, serial)
    _identical(ref, proc)
    assert proc.mode == "process"
    # Sync profiles agree too: same windows, same message volume.
    assert proc.rounds == serial.rounds
    assert [s.msgs_sent for s in proc.shard_stats] == [
        s.msgs_sent for s in serial.shard_stats
    ]


def test_runner_stats_shape():
    res = run_workload("wan_bulk", {"mbytes": 2}, shards=2, mode="serial")
    stats = res.stats_dict()
    assert stats["n_shards"] == 2
    assert stats["rounds"] == res.rounds
    assert len(res.shard_stats) == 2
    for shard in res.shard_stats:
        assert shard.windows <= res.rounds
        assert shard.events_dispatched > 0


def test_shard_run_telemetry_probe():
    res = run_workload("wan_bulk", {"mbytes": 2}, shards=2, mode="serial")
    reg = MetricsRegistry()
    assert instrument_shard_run(res, reg) is reg
    labels = {"workload": "wan_bulk", "mode": "serial"}
    assert reg.value("shard.rounds", **labels) == res.rounds
    for stats in res.shard_stats:
        per = {**labels, "shard": str(stats.shard)}
        assert reg.value("shard.msgs_sent", **per) == stats.msgs_sent
        assert reg.value("shard.events_dispatched", **per) == (
            stats.events_dispatched
        )
    # Cross-cut traffic is symmetric for one bidirectional TCP flow:
    # everything one shard sends, the other receives.
    sent = [s.msgs_sent for s in res.shard_stats]
    recv = [s.msgs_recv for s in res.shard_stats]
    assert sent == list(reversed(recv))
    assert instrument_shard_run(res, NullRegistry()) is None


# ---------------------------------------------------------------------------
# Multi-site dual-ring topologies (redundant-path failover while sharded)


def test_dual_ring_partitions_one_island_per_site():
    from repro.netsim.topology import build_dual_ring

    tb = build_dual_ring(4)
    plan = partition_network(tb.net, 4)
    assert plan.n_shards == 4
    for site in tb.sites.values():
        for host in site.hosts:
            assert plan.shard_of(host) == plan.shard_of(site.switch)
    # Distinct sites land on distinct shards: every trunk is a cut.
    shards = {plan.shard_of(site.switch) for site in tb.sites.values()}
    assert len(shards) == 4


def test_dual_ring_shard_identity_with_midrun_outage():
    """A trunk cut mid-run fails traffic over to the standby ring; the
    2-shard run must stay bit-identical to the unsharded reference even
    though the cut link carrying cross-shard traffic changes mid-run."""
    params = {"mbytes": 4, "seed": 3, "outage_at": 0.02, "outage_len": 0.2}
    ref = run_workload("ring_failover", params, shards=1, record=True)
    serial = run_workload(
        "ring_failover", params, shards=2, mode="serial", record=True
    )
    _identical(ref, serial)
    # The outage really moved traffic: the standby ring carried packets.
    from repro.shard.workloads import PartitionView, build_workload

    state = build_workload("ring_failover", dict(params), PartitionView())
    state.env.run()
    assert state.net.reroutes > 0
    standby = state.net.links["ring1-site0--site1"]
    assert sum(standby.tx_packets.values()) > 0


def test_dual_ring_process_mode_matches_serial_and_reference():
    params = {"mbytes": 2, "seed": 3, "outage_at": 0.01, "outage_len": 0.1}
    ref = run_workload("ring_failover", params, shards=1, record=True)
    serial = run_workload(
        "ring_failover", params, shards=2, mode="serial", record=True
    )
    try:
        proc = run_workload(
            "ring_failover", params, shards=2, mode="process", record=True
        )
    except (OSError, ValueError) as exc:  # pragma: no cover - no fork
        pytest.skip(f"process mode unavailable: {exc}")
    _identical(ref, serial)
    _identical(ref, proc)
    assert proc.rounds == serial.rounds
    assert [s.msgs_sent for s in proc.shard_stats] == [
        s.msgs_sent for s in serial.shard_stats
    ]


def test_dual_ring_four_shard_identity():
    params = {"mbytes": 2, "seed": 5, "outage_at": 0.01, "outage_len": 0.15}
    ref = run_workload("ring_failover", params, shards=1, record=True)
    sharded = run_workload(
        "ring_failover", params, shards=4, mode="serial", record=True
    )
    assert sharded.n_shards == 4
    _identical(ref, sharded)
