"""Fast path vs. slow path equivalence, and allocation regressions.

``Environment(fast_path=False)`` forces the classic event-per-hop
machinery (transmitter/worker processes, Store round trips); the default
fast path replaces those with scheduled callbacks and inline completion.
The contract is that the two differ only in kernel work, never in
simulated behaviour: identical delivery order, identical timestamps,
identical flow metrics.
"""

import pytest

from repro.harness.runner import SweepRunner
from repro.harness.sweeps import demo_specs
from repro.netsim import BulkTransfer, CbrFlow, ClassicalIP, build_testbed
from repro.netsim.core import Packet
from repro.netsim.ip import TESTBED_MTU
from repro.sim import Environment, Event, Store

MB = 1024 * 1024


def _run_bulk(fast_path: bool, nbytes: int = 2 * MB):
    """A WAN bulk transfer with every flow delivery recorded in order."""
    tb = build_testbed(env=Environment(fast_path=fast_path))
    bt = BulkTransfer(
        tb.net, "sp2", "t3e-600", nbytes, ip=ClassicalIP(TESTBED_MTU)
    )
    deliveries: list[tuple] = []
    for hname in ("sp2", "t3e-600"):
        host = tb.net.host(hname)
        for flow, sink in list(host._sinks.items()):
            def wrapped(packet, t, _sink=sink, _h=hname):
                deliveries.append((_h, packet.kind, packet.seq, t))
                _sink(packet, t)

            host._sinks[flow] = wrapped
    goodput = bt.run()
    return {
        "deliveries": deliveries,
        "goodput": goodput,
        "elapsed": tb.env.now,
        "retransmits": bt.retransmits,
        "timeouts": bt.timeouts,
        "scheduled": tb.env.scheduled_count,
    }


def test_fast_and_slow_paths_deliver_identically():
    fast = _run_bulk(fast_path=True)
    slow = _run_bulk(fast_path=False)
    # Same packets, same order, same (exact) timestamps end to end.
    assert fast["deliveries"] == slow["deliveries"]
    assert fast["goodput"] == slow["goodput"]
    assert fast["elapsed"] == slow["elapsed"]
    assert fast["retransmits"] == slow["retransmits"]
    assert fast["timeouts"] == slow["timeouts"]
    # ... and the fast path got there with far less kernel work.
    assert fast["scheduled"] < slow["scheduled"]


def test_fast_path_is_run_to_run_deterministic():
    a = _run_bulk(fast_path=True)
    b = _run_bulk(fast_path=True)
    assert a == b


def _run_contended(fast_path: bool, nbytes: int = MB):
    """Two competing bulk transfers plus a CBR stream on the shared ATM
    gateway attachment, every delivery at every endpoint recorded."""
    tb = build_testbed(env=Environment(fast_path=fast_path))
    ip = ClassicalIP(TESTBED_MTU)
    bulks = [
        BulkTransfer(tb.net, src, "e500-gmd", nbytes, ip=ip, name=f"bulk-{src}")
        for src in ("t3e-600", "t3e-1200")
    ]
    cbr = CbrFlow(
        tb.net,
        "onyx2-juelich",
        "onyx2-gmd",
        frame_bytes=1_350_000,
        interval=0.04,
        n_frames=5,
        ip=ip,
        name="cbr",
    )
    deliveries: list[tuple] = []
    for hname in (
        "t3e-600", "t3e-1200", "e500-gmd", "onyx2-juelich", "onyx2-gmd",
    ):
        host = tb.net.host(hname)
        for flow, sink in list(host._sinks.items()):
            def wrapped(packet, t, _sink=sink, _h=hname):
                deliveries.append((_h, packet.flow, packet.kind, packet.seq, t))
                _sink(packet, t)

            host._sinks[flow] = wrapped
    for bt in bulks:
        tb.net.env.run(until=bt.done)
    tb.net.env.run(until=cbr.done)
    wan = tb.wan_link
    return {
        "deliveries": deliveries,
        "goodputs": {bt.name: bt.throughput for bt in bulks},
        "retransmits": {bt.name: bt.retransmits for bt in bulks},
        "cbr_frames": cbr.frames_received,
        "elapsed": tb.env.now,
        "flow_tx": {d: dict(wan.flow_tx_bytes[d]) for d in wan.flow_tx_bytes},
        "scheduled": tb.env.scheduled_count,
    }


def test_contended_fast_and_slow_paths_identical():
    """DRR arbitration must not break the two-forms contract: with
    competing bulks plus a CBR stream on one bottleneck, both paths see
    the same packets, order, timestamps, and per-flow accounting."""
    fast = _run_contended(fast_path=True)
    slow = _run_contended(fast_path=False)
    assert fast["deliveries"] == slow["deliveries"]
    assert fast["goodputs"] == slow["goodputs"]
    assert fast["retransmits"] == slow["retransmits"]
    assert fast["cbr_frames"] == slow["cbr_frames"]
    assert fast["elapsed"] == slow["elapsed"]
    assert fast["flow_tx"] == slow["flow_tx"]
    assert fast["scheduled"] < slow["scheduled"]


def test_contended_fast_path_is_run_to_run_deterministic():
    a = _run_contended(fast_path=True)
    b = _run_contended(fast_path=True)
    assert a == b


def test_demo_sweep_metrics_stable_across_runs():
    specs = demo_specs(n=4, duration=0.0)
    a = SweepRunner(serial=True).run(specs, name="demo")
    b = SweepRunner(serial=True).run(specs, name="demo")
    assert a.metrics() == b.metrics()


def test_hot_path_classes_have_no_instance_dict():
    env = Environment()
    hot = [
        env,
        Event(env),
        env.timeout(0.0),
        Store(env),
        Packet(flow="f", src="a", dst="b", ip_bytes=1500, payload_bytes=1448),
    ]
    for obj in hot:
        assert not hasattr(obj, "__dict__"), type(obj).__name__
        with pytest.raises(AttributeError):
            obj.arbitrary_new_attribute = 1


def test_process_is_slotted():
    env = Environment()

    def proc():
        yield env.timeout(0.0)

    p = env.process(proc())
    assert not hasattr(p, "__dict__")
    env.run()
