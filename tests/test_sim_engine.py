"""Tests for the discrete-event kernel: environment, events, processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(2.5)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 2.5
    assert env.now == 2.5


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc())
    env.run()
    assert p.value == "payload"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1.0)

    env.process(proc())
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()
    evt = env.event()

    def trigger():
        yield env.timeout(2.0)
        evt.succeed(42)

    env.process(trigger())
    assert env.run(until=evt) == 42
    assert env.now == 2.0


def test_run_until_never_fired_event_raises():
    env = Environment()
    evt = env.event()
    with pytest.raises(SimulationError):
        env.run(until=evt)


def test_events_fire_in_fifo_order_at_same_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError, match="already triggered"):
        evt.succeed(2)
    with pytest.raises(SimulationError, match="already triggered"):
        evt.fail(ValueError("nope"))


def test_event_fail_raises_in_waiter():
    env = Environment()
    evt = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield evt
        return "handled"

    p = env.process(waiter())
    evt.fail(ValueError("boom"))
    env.run()
    assert p.value == "handled"


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_waits_on_other_process():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    p = env.process(parent())
    env.run()
    assert p.value == (3.0, "child-result")


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as exc:
            return str(exc)

    p = env.process(parent())
    env.run()
    assert p.value == "child failed"


def test_yield_already_fired_event_resumes_immediately():
    env = Environment()
    evt = env.event()
    evt.succeed("early")

    def proc():
        yield env.timeout(1.0)
        got = yield evt  # fired long ago
        return (env.now, got)

    p = env.process(proc())
    env.run()
    assert p.value == (1.0, "early")


def test_interrupt_delivers_cause():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            return ("interrupted", i.cause, env.now)

    def attacker(v):
        yield env.timeout(2.0)
        v.interrupt(cause="stop now")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert v.value == ("interrupted", "stop now", 2.0)


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(0.1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError, match="finished"):
        p.interrupt()


def test_interrupt_self_rejected():
    env = Environment()

    def proc():
        env.active_process.interrupt()
        yield env.timeout(1.0)

    p = env.process(proc())
    env.run()
    assert isinstance(p.value, SimulationError)


def test_interrupt_detaches_without_disturbing_other_waiters():
    env = Environment()
    evt = env.event()
    order = []

    def waiter(tag):
        try:
            yield evt
            order.append(tag)
        except Interrupt:
            order.append(f"{tag}-interrupted")

    procs = [env.process(waiter(t)) for t in ("a", "b", "c")]

    def attacker():
        yield env.timeout(1.0)
        procs[1].interrupt()
        yield env.timeout(1.0)
        evt.succeed()

    env.process(attacker())
    env.run()
    # The tombstoned slot neither resumes the victim nor shifts the
    # remaining waiters out of FIFO order.
    assert order == ["b-interrupted", "a", "c"]


def test_all_of_collects_values():
    env = Environment()
    evts = [env.timeout(i + 1.0, value=i * 10) for i in range(3)]

    def proc():
        got = yield env.all_of(evts)
        return (env.now, got)

    p = env.process(proc())
    env.run()
    assert p.value == (3.0, {0: 0, 1: 10, 2: 20})


def test_any_of_fires_on_first():
    env = Environment()
    slow = env.timeout(10.0, value="slow")
    fast = env.timeout(1.0, value="fast")

    def proc():
        got = yield env.any_of([slow, fast])
        return (env.now, got)

    p = env.process(proc())
    env.run(until=p)
    assert p.value == (1.0, {1: "fast"})


def test_step_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    assert env.peek() == 4.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_run_backwards_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_call_later_runs_with_args():
    env = Environment()
    got = []
    env.call_later(2.0, lambda a, b: got.append((env.now, a, b)), 1, "x")
    env.run()
    assert got == [(2.0, 1, "x")]


def test_call_at_absolute_time():
    env = Environment(initial_time=5.0)
    got = []
    env.call_at(7.5, got.append, "tick")
    env.run()
    assert got == ["tick"]
    assert env.now == 7.5


def test_call_later_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.call_later(-0.1, lambda: None)


def test_call_at_past_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.call_at(9.0, lambda: None)


def test_callbacks_and_events_share_fifo_order():
    env = Environment()
    order = []

    def event_at_one(tag):
        evt = env.event()
        evt.add_callback(lambda _e, t=tag: order.append(t))
        evt.succeed(delay=1.0)

    # Interleave the two scheduling forms at the same timestamp: firing
    # order must follow scheduling order, not the entry's form.
    event_at_one("event-1")
    env.call_later(1.0, order.append, "callback-1")
    event_at_one("event-2")
    env.call_later(1.0, order.append, "callback-2")
    env.run()
    assert order == ["event-1", "callback-1", "event-2", "callback-2"]


def test_scheduled_count_counts_both_forms():
    env = Environment()
    base = env.scheduled_count
    env.timeout(1.0)
    env.call_later(1.0, lambda: None)
    env.call_at(2.0, lambda: None)
    assert env.scheduled_count == base + 3


def test_run_until_time_executes_due_callbacks():
    env = Environment()
    got = []
    env.call_later(1.0, got.append, "in")
    env.call_later(3.0, got.append, "out")
    env.run(until=2.0)
    assert got == ["in"]
    assert env.now == 2.0


def test_determinism_two_identical_runs():
    def build():
        env = Environment()
        trace = []

        def proc(tag, dt):
            for _ in range(5):
                yield env.timeout(dt)
                trace.append((env.now, tag))

        env.process(proc("x", 0.3))
        env.process(proc("y", 0.5))
        env.run()
        return trace

    assert build() == build()
