"""Tests for Store (FIFO mailbox) and Resource (counted slots)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Environment, Resource, Store


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def proc():
        yield store.put("item")
        got = yield store.get()
        return got

    p = env.process(proc())
    env.run()
    assert p.value == "item"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer():
        got = yield store.get()
        return (env.now, got)

    def producer():
        yield env.timeout(2.0)
        yield store.put("late")

    c = env.process(consumer())
    env.process(producer())
    env.run()
    assert c.value == (2.0, "late")


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            got = yield store.get()
            received.append(got)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    timeline = []

    def producer():
        yield store.put("a")
        timeline.append(("put-a", env.now))
        yield store.put("b")  # blocks until consumer drains
        timeline.append(("put-b", env.now))

    def consumer():
        yield env.timeout(5.0)
        got = yield store.get()
        timeline.append(("got", got, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0.0) in timeline
    assert ("put-b", 5.0) in timeline


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len_counts_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
def test_store_preserves_order_property(items):
    """Property: a Store is an exact FIFO for any put sequence."""
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for it in items:
            yield store.put(it)

    def consumer():
        for _ in items:
            got = yield store.get()
            out.append(got)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == items


def test_put_nowait_accepts_and_rejects_on_capacity():
    env = Environment()
    store = Store(env, capacity=2)
    assert store.put_nowait("a")
    assert store.put_nowait("b")
    assert not store.put_nowait("c")  # full: caller counts the drop
    assert list(store.items) == ["a", "b"]


def test_put_nowait_hands_off_to_blocked_getter():
    env = Environment()
    store = Store(env)

    def consumer():
        got = yield store.get()
        return (env.now, got)

    def producer():
        yield env.timeout(3.0)
        assert store.put_nowait("direct")

    c = env.process(consumer())
    env.process(producer())
    env.run()
    assert c.value == (3.0, "direct")
    assert len(store) == 0  # handed off, never parked in items


def test_get_completes_inline_on_fast_path():
    env = Environment()
    store = Store(env)
    store.put_nowait("ready")
    evt = store.get()
    # No heap round trip: the event is already processed at creation.
    assert evt.processed
    assert evt.value == "ready"


def test_get_round_trips_through_queue_on_slow_path():
    env = Environment(fast_path=False)
    store = Store(env)
    store.put_nowait("ready")
    evt = store.get()
    assert not evt.processed  # classic succeed-then-fire round trip
    env.run()
    assert evt.processed
    assert evt.value == "ready"


def test_inline_get_admits_blocked_putter():
    env = Environment()
    store = Store(env, capacity=1)
    done = []

    def producer():
        yield store.put("a")
        yield store.put("b")  # blocks: capacity 1
        done.append(env.now)

    def consumer():
        yield env.timeout(1.0)
        got = yield store.get()  # inline fast path frees the slot
        return got

    env.process(producer())
    c = env.process(consumer())
    env.run()
    assert c.value == "a"
    assert done == [1.0]
    assert list(store.items) == ["b"]


def test_resource_mutual_exclusion():
    env = Environment()
    res = Resource(env, capacity=1)
    active = []
    max_active = []

    def worker(tag):
        yield res.request()
        active.append(tag)
        max_active.append(len(active))
        yield env.timeout(1.0)
        active.remove(tag)
        res.release()

    for tag in range(4):
        env.process(worker(tag))
    env.run()
    assert max(max_active) == 1
    assert env.now == 4.0  # fully serialized


def test_resource_capacity_two_parallelism():
    env = Environment()
    res = Resource(env, capacity=2)

    def worker():
        yield res.request()
        yield env.timeout(1.0)
        res.release()

    for _ in range(4):
        env.process(worker())
    env.run()
    assert env.now == 2.0  # two waves of two


def test_resource_release_without_hold_raises():
    env = Environment()
    res = Resource(env)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_available_accounting():
    env = Environment()
    res = Resource(env, capacity=3)

    def proc():
        yield res.request()
        yield res.request()
        return res.available

    p = env.process(proc())
    env.run()
    assert p.value == 1


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def worker(tag):
        yield res.request()
        grants.append(tag)
        yield env.timeout(1.0)
        res.release()

    for tag in ("first", "second", "third"):
        env.process(worker(tag))
    env.run()
    assert grants == ["first", "second", "third"]
