"""Unit tests for repro.telemetry: metrics, sampler, alerts, export, log."""

import csv
import json
import logging
import math

import pytest

from repro.sim import Environment
from repro.telemetry import (
    AlertManager,
    MetricsRegistry,
    NullRegistry,
    RingBuffer,
    Sampler,
    counter_rate_above,
    get_logger,
    samples_to_jsonl,
    to_csv,
    to_jsonl,
)
from repro.telemetry.log import disable_console, enable_console


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("pkts", link="wan")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("pkts")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("drops", link="wan", reason="queue_full")
        b = reg.counter("drops", link="wan", reason="link_down")
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert reg.total("drops") == 5

    def test_same_labels_deduplicate(self):
        reg = MetricsRegistry()
        # label order must not matter
        assert reg.counter("x", a="1", b="2") is reg.counter("x", b="2", a="1")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestGauge:
    def test_explicit_set(self):
        g = MetricsRegistry().gauge("util")
        g.set(0.7)
        assert g.value == 0.7

    def test_callback_is_lazy(self):
        calls = []

        def read():
            calls.append(1)
            return 42.0

        g = MetricsRegistry().gauge("depth")
        g.set_function(read)
        assert calls == []  # nothing evaluated until someone looks
        assert g.value == 42.0
        assert len(calls) == 1


class TestHistogram:
    def test_count_sum_min_max(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0.5, 1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(7.5)
        assert h.min == 0.5
        assert h.max == 4.0
        assert h.mean == pytest.approx(7.5 / 4)

    def test_quantiles_bracket_truth(self):
        h = MetricsRegistry().histogram("lat")
        values = [0.001 * (i + 1) for i in range(1000)]
        for v in values:
            h.observe(v)
        # Log-binned: within a factor of 2 above the true quantile.
        for q in (0.5, 0.9, 0.99):
            true = values[int(q * len(values)) - 1]
            est = h.quantile(q)
            assert true <= est <= 2 * true + 1e-12

    def test_extremes_exact(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0.3, 7.0, 2.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.3
        assert h.quantile(1.0) == 7.0

    def test_underflow_bin(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.0)
        h.observe(-1.0)
        assert h.count == 2
        assert h.quantile(0.5) <= 0.0

    def test_empty_quantile(self):
        assert MetricsRegistry().histogram("lat").quantile(0.5) == 0.0


class TestNullRegistry:
    def test_disabled_and_shared_noops(self):
        reg = NullRegistry()
        assert reg.enabled is False
        c1 = reg.counter("a", x="1")
        c2 = reg.counter("b")
        assert c1 is c2  # shared singleton
        c1.inc(100)
        assert c1.value == 0
        reg.gauge("g").set(5)
        assert reg.gauge("g").value == 0
        reg.histogram("h").observe(3)
        assert reg.histogram("h").count == 0

    def test_snapshot_empty(self):
        reg = NullRegistry()
        reg.counter("a").inc()
        assert reg.snapshot() == []
        assert len(reg) == 0


class TestRingBuffer:
    def test_append_and_order(self):
        rb = RingBuffer(capacity=8)
        for i in range(5):
            rb.append(float(i), float(i) * 10)
        assert rb.times() == [0, 1, 2, 3, 4]
        assert rb.last == (4.0, 40.0)

    def test_eviction_keeps_newest(self):
        rb = RingBuffer(capacity=3)
        for i in range(7):
            rb.append(float(i), float(i))
        assert len(rb) == 3
        assert rb.times() == [4.0, 5.0, 6.0]
        assert rb.last == (6.0, 6.0)


class TestSampler:
    def test_periodic_sampling_on_sim_clock(self):
        env = Environment()
        reg = MetricsRegistry()
        g = reg.gauge("level")

        def source():
            for i in range(10):
                g.set(i)
                yield env.timeout(1.0)

        env.process(source())
        sampler = Sampler(env, reg, interval=1.0).start()
        env.run(until=5.5)
        sampler.stop()
        env.run()
        buf = sampler.buffer("level")
        assert buf is not None
        # Ticks at t=0,1,..,5 read the value set at that instant.
        assert buf.times() == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert buf.values()[-1] == 5.0

    def test_stop_lets_queue_drain(self):
        env = Environment()
        sampler = Sampler(env, MetricsRegistry(), interval=0.1).start()
        env.run(until=0.35)
        sampler.stop()
        env.run()  # must terminate: no further sampler events scheduled
        assert env.peek() == math.inf

    def test_listener_called_each_tick(self):
        env = Environment()
        sampler = Sampler(env, MetricsRegistry(), interval=1.0)
        ticks = []
        sampler.add_listener(ticks.append)
        sampler.start()
        env.run(until=3.5)
        sampler.stop()
        env.run()
        assert ticks == [0.0, 1.0, 2.0, 3.0]

    def test_series_created_mid_run_picked_up(self):
        env = Environment()
        reg = MetricsRegistry()

        def late():
            yield env.timeout(2.0)
            reg.counter("late").inc()

        env.process(late())
        sampler = Sampler(env, reg, interval=1.0).start()
        env.run(until=4.5)
        sampler.stop()
        env.run()
        buf = sampler.buffer("late")
        assert buf.times()[0] >= 2.0


class TestAlerts:
    def _manager(self):
        return AlertManager(Environment())

    def test_fire_and_resolve_immediately(self):
        mgr = self._manager()
        breached = {"v": False}
        alert = mgr.watch("x", lambda now: breached["v"])
        mgr.evaluate(now=1.0)
        assert not alert.firing
        breached["v"] = True
        mgr.evaluate(now=2.0)
        assert alert.firing and alert.fired_at == 2.0
        breached["v"] = False
        mgr.evaluate(now=3.0)
        assert not alert.firing and alert.resolved_at == 3.0
        assert [e.kind for e in mgr.history("x")] == ["fired", "resolved"]

    def test_sustain_suppresses_blips(self):
        mgr = self._manager()
        breached = {"v": True}
        alert = mgr.watch("x", lambda now: breached["v"], sustain=1.0)
        mgr.evaluate(now=0.0)
        assert alert.state == "pending"
        breached["v"] = False
        mgr.evaluate(now=0.5)  # blip over before sustain elapsed
        assert alert.state == "ok"
        breached["v"] = True
        mgr.evaluate(now=1.0)
        mgr.evaluate(now=2.0)
        assert alert.firing
        assert alert.fired_at == 2.0

    def test_resolve_hysteresis(self):
        mgr = self._manager()
        breached = {"v": True}
        alert = mgr.watch("x", lambda now: breached["v"], resolve_after=1.0)
        mgr.evaluate(now=0.0)
        assert alert.firing
        breached["v"] = False
        mgr.evaluate(now=0.5)
        assert alert.firing  # not clear long enough yet
        mgr.evaluate(now=1.6)
        assert not alert.firing

    def test_callbacks_invoked(self):
        mgr = self._manager()
        seen = []
        mgr.watch(
            "x",
            lambda now: now < 2.0,
            on_fire=lambda a, t: seen.append(("fire", t)),
            on_resolve=lambda a, t: seen.append(("resolve", t)),
        )
        mgr.evaluate(now=1.0)
        mgr.evaluate(now=3.0)
        assert seen == [("fire", 1.0), ("resolve", 3.0)]

    def test_counter_rate_predicate(self):
        reg = MetricsRegistry()
        c = reg.counter("rexmt")
        pred = counter_rate_above(c, threshold=5.0)
        assert pred(0.0) is False  # no baseline yet
        c.inc(10)
        assert pred(1.0) is True  # 10/s > 5/s
        assert pred(2.0) is False  # no growth this window

    def test_firing_list(self):
        mgr = self._manager()
        mgr.watch("a", lambda now: True)
        mgr.watch("b", lambda now: False)
        mgr.evaluate(now=0.0)
        assert mgr.firing == ["a"]


class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("pkts", link="wan").inc(7)
        reg.gauge("util", link="wan").set(0.5)
        h = reg.histogram("lat", stage="t3e")
        h.observe(1.0)
        h.observe(2.0)
        return reg

    def test_jsonl_roundtrip(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "metrics.jsonl"
        n = to_jsonl(reg, str(path), now=1.5)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == n == 3
        by_name = {r["name"]: r for r in rows}
        assert by_name["pkts"]["value"] == 7
        assert by_name["pkts"]["labels"] == {"link": "wan"}
        assert by_name["pkts"]["t"] == 1.5
        assert by_name["lat"]["count"] == 2
        assert by_name["lat"]["p50"] >= 1.0

    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "metrics.csv"
        n = to_csv(self._populated(), str(path))
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == n == 3
        by_name = {r["name"]: r for r in rows}
        assert float(by_name["pkts"]["value"]) == 7
        assert by_name["pkts"]["labels"] == "link=wan"
        assert int(by_name["lat"]["count"]) == 2

    def test_samples_jsonl(self, tmp_path):
        env = Environment()
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(1.0)
        sampler = Sampler(env, reg, interval=1.0).start()
        env.run(until=2.5)
        sampler.stop()
        env.run()
        path = tmp_path / "samples.jsonl"
        n = samples_to_jsonl(sampler, str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert n == len(rows) == 3
        assert [r["t"] for r in rows] == [0.0, 1.0, 2.0]
        assert all(r["name"] == "level" for r in rows)


class TestLog:
    def test_silent_by_default(self, capsys):
        log = get_logger("unit-test")
        log.info("should not appear anywhere")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_console_enable_disable(self, capsys):
        enable_console("DEBUG")
        try:
            get_logger("unit-test").info("now visible")
            assert "now visible" in capsys.readouterr().err
        finally:
            disable_console()
            logging.getLogger("repro").setLevel(logging.NOTSET)
        get_logger("unit-test").info("hidden again")
        assert capsys.readouterr().err == ""

    def test_logger_namespace(self):
        assert get_logger("metampi.launcher").name == "repro.metampi.launcher"
        assert get_logger().name == "repro"
