"""Integration tests: probes wired into netsim/metampi/fire, the
zero-overhead NullRegistry guarantee, and the fault → alert → recovery
loop composing with :mod:`repro.netsim.faults`."""

import pytest

from repro.fire import FirePipeline, HeadPhantom, PipelineConfig
from repro.fire.rt import RTClient, RTServer
from repro.fire.scanner import ScannerConfig, SimulatedScanner
from repro.machines import CRAY_T3E_600, IBM_SP2
from repro.metampi import MetaMPI
from repro.metampi.errors import TransportError
from repro.metampi.runtime import Runtime
from repro.metampi.transport import RetryPolicy, TransportModel
from repro.netsim import (
    BulkTransfer,
    CbrFlow,
    ClassicalIP,
    FaultInjector,
    Host,
    Network,
    PingFlow,
    build_testbed,
)
from repro.netsim.ip import TESTBED_MTU
from repro.sim import Environment
from repro.telemetry import (
    AlertManager,
    MetricsRegistry,
    NullRegistry,
    Sampler,
    counter_nonzero,
    instrument_flow,
    instrument_network,
    instrument_pipeline,
    instrument_rt_client,
    instrument_runtime,
    link_down,
    weather_map,
)
from repro.util.units import MBYTE

IP64K = ClassicalIP(TESTBED_MTU)


def lossy_wan_run(registry, nbytes=10 * MBYTE, loss=0.02, sample=True):
    """One seeded lossy WAN transfer, optionally instrumented."""
    tb = build_testbed()
    FaultInjector(tb.net, seed=1).random_loss(
        tb.wan_link, loss, direction="sw-juelich"
    )
    bt = BulkTransfer(tb.net, "t3e-600", "sp2", nbytes, ip=IP64K)
    sampler = None
    if registry is not None:
        instrument_network(tb.net, registry)
        instrument_flow(bt, registry)
        if sample and registry.enabled:
            sampler = Sampler(tb.net.env, registry, interval=0.01).start()
    rate = bt.run()
    if sampler is not None:
        sampler.stop()
    fingerprint = {
        "now": tb.net.env.now,
        "rate": rate,
        "retransmits": bt.retransmits,
        "timeouts": bt.timeouts,
        "fast_retransmits": bt.fast_retransmits,
        "links": {
            name: (
                dict(link.tx_bytes),
                dict(link.tx_packets),
                dict(link.drops),
                dict(link.lost),
            )
            for name, link in tb.net.links.items()
        },
    }
    return fingerprint, tb, bt


class TestNetworkProbes:
    def test_counters_mirror_link_state(self):
        reg = MetricsRegistry()
        _, tb, bt = lossy_wan_run(reg)
        wan = tb.wan_link
        d = "sw-juelich"
        assert (
            reg.value("netsim.link.tx_packets", link=wan.name, direction=d)
            == wan.tx_packets[d]
        )
        assert (
            reg.value("netsim.link.tx_bytes", link=wan.name, direction=d)
            == wan.tx_bytes[d]
        )
        # typed drop reason surfaced with a label, matching the link tally
        assert wan.drop_reasons["wire_loss"] > 0
        assert (
            reg.value(
                "netsim.link.drops", link=wan.name, direction=d, reason="wire_loss"
            )
            == wan.drop_reasons["wire_loss"]
        )

    def test_utilization_and_queue_gauges(self):
        reg = MetricsRegistry()
        _, tb, _ = lossy_wan_run(reg)
        wan = tb.wan_link
        util = reg.value(
            "netsim.link.utilization", link=wan.name, direction="sw-juelich"
        )
        assert 0.0 <= util <= 1.0
        depth = reg.value(
            "netsim.link.queue_depth", link=wan.name, direction="sw-juelich"
        )
        assert depth == 0.0  # drained at completion
        assert reg.value("netsim.link.up", link=wan.name) == 1.0

    def test_flow_labelled_drops_and_gauges(self):
        """Per-flow accounting: wire losses surface under the flow's
        name and match the link's own per-flow tally, and opting a flow
        into ``instrument_network`` registers per-flow volume gauges."""
        reg = MetricsRegistry()
        tb = build_testbed()
        FaultInjector(tb.net, seed=1).random_loss(
            tb.wan_link, 0.02, direction="sw-juelich"
        )
        bt = BulkTransfer(
            tb.net, "t3e-600", "sp2", 10 * MBYTE, ip=IP64K, name="probed"
        )
        instrument_network(tb.net, reg, flows=["probed"])
        bt.run()
        wan = tb.wan_link
        d = "sw-juelich"
        assert wan.flow_drops[d]["probed"] > 0
        assert (
            reg.value(
                "netsim.link.flow_drops",
                link=wan.name,
                direction=d,
                reason="wire_loss",
                flow="probed",
            )
            == wan.flow_drops[d]["probed"]
        )
        assert (
            reg.value(
                "netsim.link.flow_tx_bytes",
                link=wan.name,
                direction=d,
                flow="probed",
            )
            == wan.flow_tx_bytes[d]["probed"]
        )
        assert (
            reg.value(
                "netsim.link.flow_queue_depth",
                link=wan.name,
                direction=d,
                flow="probed",
            )
            == 0.0  # drained at completion
        )

    def test_flow_probe_counts_recovery_events(self):
        reg = MetricsRegistry()
        _, _, bt = lossy_wan_run(reg)
        assert bt.retransmits > 0
        total_rexmt = sum(
            s.value
            for s in reg.series("counter")
            if s.name == "netsim.flow.retransmits" and s.labels["flow"] == bt.name
        )
        assert total_rexmt == bt.retransmits
        assert (
            reg.value("netsim.flow.timeouts", flow=bt.name) == bt.timeouts
        )
        assert reg.value("netsim.flow.goodput_bps", flow=bt.name) == pytest.approx(
            bt.throughput
        )

    def test_gateway_probe(self):
        reg = MetricsRegistry()
        tb = build_testbed()
        instrument_network(tb.net, reg)
        BulkTransfer(tb.net, "t3e-600", "sp2", 2 * MBYTE, ip=IP64K).run()
        gw = tb.net.nodes["gw-e5000"]
        assert gw.forwarded > 0
        assert reg.value("netsim.gateway.forwarded", gateway="gw-e5000") == (
            gw.forwarded
        )

    def test_sampler_timeseries_of_utilization(self):
        reg = MetricsRegistry()
        fp, tb, _ = lossy_wan_run(reg)
        # the sampler stored a ring buffer; values must be within [0, 1]
        # (the sampler object is internal to lossy_wan_run, so re-run here)
        tb2 = build_testbed()
        reg2 = MetricsRegistry()
        instrument_network(tb2.net, reg2)
        sampler = Sampler(tb2.net.env, reg2, interval=0.05).start()
        bt = BulkTransfer(tb2.net, "t3e-600", "sp2", 10 * MBYTE, ip=IP64K)
        bt.run()
        sampler.stop()
        buf = sampler.buffer(
            "netsim.link.utilization",
            link=tb2.wan_link.name,
            direction="sw-juelich",
        )
        assert buf is not None and len(buf) > 3
        assert all(0.0 <= v <= 1.0 for v in buf.values())
        assert max(buf.values()) > 0.0


class TestZeroOverheadGuarantee:
    """The ISSUE's regression contract: NullRegistry leaves the hot
    paths untouched and instrumentation never changes simulation
    results."""

    def test_null_registry_installs_nothing(self):
        reg = NullRegistry()
        _, tb, bt = lossy_wan_run(reg, sample=False)
        assert tb.net.probe is None
        assert all(link.probe is None for link in tb.net.links.values())
        assert all(
            getattr(n, "probe", None) is None for n in tb.net.nodes.values()
        )
        assert bt.probe is None
        assert len(reg) == 0  # no gauges registered either

    def test_instrumented_run_is_bit_identical(self):
        base, _, _ = lossy_wan_run(None)
        null, _, _ = lossy_wan_run(NullRegistry())
        full, _, _ = lossy_wan_run(MetricsRegistry())
        # same clocks, same byte counts, same recovery event counts
        assert base == null
        assert base == full

    def test_metampi_null_registry_installs_nothing(self):
        mc = MetaMPI()
        assert instrument_runtime(mc, NullRegistry()) is None
        assert mc.runtime.probe is None
        assert mc.runtime.transport.probe is None


class TestFaultAlertRecovery:
    def test_fault_injected_alert_fired_recovery_observed(self):
        """End to end: WAN outage → alert fires → link heals → alert
        resolves → transfer completes through TCP recovery."""
        tb = build_testbed()
        reg = MetricsRegistry()
        instrument_network(tb.net, reg)
        bt = BulkTransfer(tb.net, "t3e-600", "sp2", 40 * MBYTE, ip=IP64K)
        instrument_flow(bt, reg)

        mgr = AlertManager(tb.net.env)
        mgr.watch("wan-down", link_down(tb.wan_link))
        spikes = mgr.watch(
            "wan-rto-spike",
            counter_nonzero(reg.counter("netsim.flow.timeouts", flow=bt.name)),
        )
        sampler = Sampler(tb.net.env, reg, interval=0.05)
        sampler.add_listener(mgr.evaluate)
        sampler.start()

        injector = FaultInjector(tb.net)
        injector.link_down(tb.wan_link, at=0.2, duration=1.0)

        rate = bt.run()
        sampler.stop()

        # fault injected ...
        assert injector.log[0][1] == f"link {tb.wan_link.name} down"
        fault_time = injector.log[0][0]
        # ... alert raised (on the sampling cadence) ...
        history = mgr.history("wan-down")
        assert [e.kind for e in history] == ["fired", "resolved"]
        fired, resolved = history
        assert fault_time <= fired.time <= fault_time + 0.1
        assert 1.2 <= resolved.time <= 1.35
        # ... and recovery observed: the transfer finished afterwards,
        # having actually retransmitted through the outage.
        assert rate > 0
        assert bt.timeouts > 0
        assert spikes.fired_count >= 1
        assert "wan-down" not in mgr.firing  # the outage itself healed
        assert tb.net.env.now > resolved.time

    def test_weather_map_reflects_outage(self):
        tb = build_testbed()
        FaultInjector(tb.net).link_down(tb.wan_link, at=0.0)
        tb.net.env.run(until=0.01)
        table = weather_map(tb.net)
        wan_rows = [
            row for row in table.splitlines() if tb.wan_link.name in row
        ]
        assert wan_rows and all("DOWN" in row for row in wan_rows)
        assert "gateway" in table


class TestMetampiProbes:
    def test_per_rank_pair_wan_lan_split(self):
        tb = build_testbed()
        mc = MetaMPI(testbed=tb)
        mc.add_machine(CRAY_T3E_600, ranks=2)
        mc.add_machine(IBM_SP2, ranks=1)
        reg = MetricsRegistry()
        instrument_runtime(mc, reg)

        def main(comm):
            if comm.rank == 0:
                comm.send(b"x" * 1000, dest=1, tag=1)  # same machine
                comm.send(b"y" * 2000, dest=2, tag=2)  # across the WAN
                return None
            return comm.recv(source=0)

        mc.run(main)
        assert reg.value("metampi.messages", src="0", dst="1", scope="intra") == 1
        assert reg.value("metampi.messages", src="0", dst="2", scope="wan") == 1
        assert reg.value("metampi.bytes", src="0", dst="2", scope="wan") >= 2000
        # WAN vs LAN split is queryable as totals too
        wan_msgs = sum(
            s.value
            for s in reg.series("counter")
            if s.name == "metampi.messages" and s.labels["scope"] == "wan"
        )
        assert wan_msgs >= 1

    def test_transport_retry_and_error_counters(self):
        tb = build_testbed()
        tb.wan_link.set_up(False)
        tm = TransportModel(
            net=tb.net, retry=RetryPolicy(max_attempts=3, backoff=0.01)
        )
        reg = MetricsRegistry()
        instrument_runtime(Runtime(transport=tm), reg)
        with pytest.raises(TransportError):
            tm.wan("t3e-600", "sp2")
        assert reg.value(
            "metampi.transport.retries", src="t3e-600", dst="sp2"
        ) == 2  # max_attempts - 1 backoff rounds
        assert reg.value("metampi.transport.errors") == 1


class TestFlowDropSurfacing:
    """PR 1 left loss counters as scattered attributes; they now land in
    the registry under typed drop-reason labels."""

    def _two_hosts(self, rate=1e6, queue_packets=float("inf")):
        env = Environment()
        net = Network(env)
        net.add(Host(env, "a"))
        net.add(Host(env, "b"))
        net.link("a", "b", rate, queue_packets=queue_packets)
        return net

    def test_ping_lost_echoes(self):
        net = self._two_hosts()
        reg = MetricsRegistry()
        ping = PingFlow(net, "a", "b", count=5, interval=1e-3, deadline=0.1)
        instrument_flow(ping, reg)
        FaultInjector(net).link_down(("a", "b"), at=0.0021)
        ping.run()
        assert ping.lost > 0
        assert (
            reg.value("netsim.flow.drops", flow=ping.name, reason="lost_echo")
            == ping.lost
        )

    def test_cbr_lost_frames(self):
        net = self._two_hosts(rate=1e6, queue_packets=2)
        reg = MetricsRegistry()
        instrument_network(net, reg)
        cbr = CbrFlow(
            net,
            "a",
            "b",
            frame_bytes=50_000,
            interval=0.01,
            n_frames=10,
            drain_timeout=2.0,
        )
        instrument_flow(cbr, reg)
        cbr.run()
        assert cbr.frames_lost > 0  # the link is oversubscribed 40x
        assert (
            reg.value("netsim.flow.drops", flow=cbr.name, reason="lost_frame")
            == cbr.frames_lost
        )
        # the queue-full drops carry their own typed reason on the link
        link = net.links["a--b"]
        assert link.drop_reasons.get("queue_full", 0) > 0
        assert (
            reg.value(
                "netsim.link.drops", link="a--b", direction="a", reason="queue_full"
            )
            == link.drop_reasons["queue_full"]
        )

    def test_no_route_drops_counted(self):
        net = self._two_hosts()
        reg = MetricsRegistry()
        instrument_network(net, reg)
        ping = PingFlow(net, "a", "b", count=3, interval=1e-3, deadline=0.05)
        net.links["a--b"].set_up(False)
        ping.run()
        assert net.no_route_drops > 0
        assert reg.value("netsim.route.drops", reason="no_route") == (
            net.no_route_drops
        )


class TestFireProbes:
    def test_pipeline_stage_histograms(self):
        reg = MetricsRegistry()
        pipe = FirePipeline(PipelineConfig(n_images=6))
        instrument_pipeline(pipe, reg)
        report = pipe.run()
        assert len(report.records) == 6
        t3e = reg.get("fire.stage.seconds", stage="t3e")
        assert t3e.count == 6
        assert t3e.mean == pytest.approx(pipe.t3e_time, rel=1e-6)
        total = reg.get("fire.stage.seconds", stage="total")
        assert total.count == 6
        assert total.min >= pipe.t3e_time
        assert reg.value("fire.images") == 6

    def test_pipelined_mode_also_observed(self):
        reg = MetricsRegistry()
        pipe = FirePipeline(PipelineConfig(n_images=5, pipelined=True))
        instrument_pipeline(pipe, reg)
        pipe.run()
        assert reg.get("fire.stage.seconds", stage="total").count == 5

    def test_rt_client_frame_probe(self):
        reg = MetricsRegistry()
        scanner = SimulatedScanner(
            HeadPhantom(), ScannerConfig(n_frames=8, noise_sigma=3.0)
        )
        client = RTClient(RTServer(scanner))
        instrument_rt_client(client, reg)
        client.run(4)
        assert reg.value("fire.rt.frames") == 4
        hist = reg.get("fire.rt.frame_seconds")
        assert hist.count == 4
        assert hist.min > 0.0  # real wall-clock cost of the chain
