"""Tests for the VAMPIR-like tracer: events, timelines, statistics,
rendering, and trace files."""

import numpy as np
import pytest

from repro.machines import CRAY_T3E_600, IBM_SP2
from repro.metampi import MetaMPI
from repro.trace import (
    EventKind,
    Timeline,
    TraceEvent,
    Tracer,
    message_matrix,
    profile_regions,
    read_trace,
    render_timeline,
    write_trace,
)
from repro.trace.render import render_legend
from repro.trace.stats import region_totals


def traced_run(fn, layout=((CRAY_T3E_600, 2), (IBM_SP2, 1))):
    tracer = Tracer()
    mc = MetaMPI(tracer=tracer, wallclock_timeout=20)
    for spec, n in layout:
        mc.add_machine(spec, ranks=n)
    mc.run(fn, args=(tracer,))
    return tracer


def sample_program(comm, tracer):
    with tracer.region(comm, "compute"):
        comm.advance(0.2 * (comm.rank + 1))
    if comm.rank == 0:
        comm.send(np.zeros(500), 1, tag=1)
    elif comm.rank == 1:
        comm.recv(source=0, tag=1)
    comm.barrier()


class TestTracer:
    def test_events_recorded(self):
        tracer = traced_run(sample_program)
        kinds = {e.kind for e in tracer.events}
        assert EventKind.ENTER in kinds
        assert EventKind.LEAVE in kinds
        assert EventKind.SEND in kinds
        assert EventKind.RECV in kinds
        assert EventKind.COMPUTE in kinds
        assert EventKind.FINISH in kinds

    def test_region_intervals_reflect_advance(self):
        tracer = traced_run(sample_program)
        tl = tracer.timeline()
        intervals = tl.region_intervals(0)
        assert len(intervals) == 1
        region, t0, t1 = intervals[0]
        assert region == "compute"
        assert t1 - t0 == pytest.approx(0.2)

    def test_send_recv_pairing(self):
        tracer = traced_run(sample_program)
        tl = tracer.timeline()
        msgs = [(s, d) for s, d, _, _ in tl.messages()]
        assert (0, 1) in msgs

    def test_clear(self):
        tracer = traced_run(sample_program)
        tracer.clear()
        assert tracer.events == []

    def test_finish_event_per_rank(self):
        tracer = traced_run(sample_program)
        finishes = tracer.timeline().of_kind(EventKind.FINISH)
        assert {e.rank for e in finishes} == {0, 1, 2}


class TestTimeline:
    def mk(self):
        return Timeline(
            [
                TraceEvent(rank=0, time=0.0, kind=EventKind.ENTER, region="a"),
                TraceEvent(rank=0, time=1.0, kind=EventKind.LEAVE, region="a"),
                TraceEvent(rank=1, time=0.5, kind=EventKind.ENTER, region="b"),
                TraceEvent(rank=1, time=2.0, kind=EventKind.LEAVE, region="b"),
                TraceEvent(
                    rank=1, time=2.5, kind=EventKind.RECV, peer=0, nbytes=100
                ),
            ]
        )

    def test_ordering_and_span(self):
        tl = self.mk()
        assert tl.start == 0.0
        assert tl.end == 2.5
        assert tl.span == 2.5
        assert tl.ranks == [0, 1]

    def test_empty_timeline(self):
        tl = Timeline([])
        assert tl.start == 0.0 and tl.end == 0.0
        assert tl.ranks == []

    def test_nested_regions(self):
        tl = Timeline(
            [
                TraceEvent(rank=0, time=0.0, kind=EventKind.ENTER, region="outer"),
                TraceEvent(rank=0, time=1.0, kind=EventKind.ENTER, region="inner"),
                TraceEvent(rank=0, time=2.0, kind=EventKind.LEAVE, region="inner"),
                TraceEvent(rank=0, time=3.0, kind=EventKind.LEAVE, region="outer"),
            ]
        )
        intervals = tl.region_intervals(0)
        assert ("outer", 0.0, 3.0) in intervals
        assert ("inner", 1.0, 2.0) in intervals

    def test_merge(self):
        tl1 = self.mk()
        tl2 = Timeline(
            [TraceEvent(rank=2, time=5.0, kind=EventKind.ENTER, region="c")]
        )
        merged = tl1.merge(tl2)
        assert merged.ranks == [0, 1, 2]
        assert merged.end == 5.0


class TestStats:
    def test_profile_regions(self):
        tracer = traced_run(sample_program)
        profs = profile_regions(tracer.timeline())
        assert profs[("compute", 0)].total_time == pytest.approx(0.2)
        assert profs[("compute", 2)].total_time == pytest.approx(0.6)
        assert profs[("compute", 1)].calls == 1
        assert profs[("compute", 1)].mean_time == pytest.approx(0.4)

    def test_region_totals(self):
        tracer = traced_run(sample_program)
        totals = region_totals(tracer.timeline())
        assert totals["compute"] == pytest.approx(0.2 + 0.4 + 0.6)

    def test_message_matrix(self):
        tracer = traced_run(sample_program)
        mat = message_matrix(tracer.timeline())
        assert mat.bytes[0, 1] >= 4000  # 500 float64
        assert mat.counts[0, 1] >= 1
        assert mat.total_bytes >= mat.bytes[0, 1]

    def test_heaviest_pair(self):
        tl = Timeline(
            [
                TraceEvent(rank=1, time=1.0, kind=EventKind.RECV, peer=0, nbytes=10),
                TraceEvent(rank=2, time=1.0, kind=EventKind.RECV, peer=0, nbytes=99),
            ]
        )
        assert message_matrix(tl).heaviest_pair() == (0, 2)


class TestRender:
    def test_render_contains_all_ranks(self):
        tracer = traced_run(sample_program)
        text = render_timeline(tracer.timeline(), width=40)
        for r in (0, 1, 2):
            assert f"rank {r}" in text

    def test_render_marks_regions_and_messages(self):
        tracer = traced_run(sample_program)
        text = render_timeline(tracer.timeline(), width=40)
        assert "c" in text  # 'compute' region bars
        assert ">" in text and "<" in text

    def test_render_empty(self):
        assert render_timeline(Timeline([])) == "(empty trace)"

    def test_legend(self):
        tracer = traced_run(sample_program)
        legend = render_legend(tracer.timeline())
        assert "c = compute" in legend


class TestIo:
    def test_roundtrip(self, tmp_path):
        tracer = traced_run(sample_program)
        path = tmp_path / "run.jsonl"
        n = write_trace(path, tracer.events)
        assert n == len(tracer.events)
        back = read_trace(path)
        assert len(back.events) == n
        assert back.ranks == tracer.timeline().ranks
        assert back.end == pytest.approx(tracer.timeline().end)

    def test_event_dict_roundtrip(self):
        ev = TraceEvent(
            rank=3, time=1.25, kind=EventKind.SEND, peer=1, tag=9, nbytes=512
        )
        assert TraceEvent.from_dict(ev.to_dict()) == ev

    def test_merge_traces(self, tmp_path):
        from repro.trace.io import merge_traces

        t1 = [TraceEvent(rank=0, time=0.0, kind=EventKind.ENTER, region="x")]
        t2 = [TraceEvent(rank=1, time=1.0, kind=EventKind.ENTER, region="y")]
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(p1, t1)
        write_trace(p2, t2)
        merged = merge_traces(p1, p2)
        assert merged.ranks == [0, 1]
