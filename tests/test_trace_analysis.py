"""Tests for the trace performance-analysis module (the VAMPIR 'tuning'
side)."""

import numpy as np
import pytest

from repro.machines import CRAY_T3E_600, IBM_SP2
from repro.metampi import MetaMPI
from repro.trace import Tracer
from repro.trace.analysis import (
    load_imbalance,
    summarize,
    total_wait_by_rank,
    traffic_profile,
    utilization,
    wait_times,
)
from repro.trace.timeline import Timeline


def traced(fn, layout=((CRAY_T3E_600, 2),)):
    tracer = Tracer()
    mc = MetaMPI(tracer=tracer, wallclock_timeout=30)
    for spec, n in layout:
        mc.add_machine(spec, ranks=n)
    mc.run(fn)
    return tracer.timeline()


class TestUtilization:
    def test_busy_fraction(self):
        def main(comm):
            comm.advance(1.0)
            comm.barrier()

        tl = traced(main)
        util = utilization(tl)
        for rank in (0, 1):
            assert util[rank].busy == pytest.approx(1.0)
            assert 0.5 < util[rank].utilization <= 1.0

    def test_imbalance_detected(self):
        def main(comm):
            comm.advance(1.0 if comm.rank == 0 else 0.2)
            comm.barrier()

        tl = traced(main)
        assert load_imbalance(tl) > 1.5

    def test_balanced_run(self):
        def main(comm):
            comm.advance(0.5)
            comm.barrier()

        tl = traced(main)
        assert load_imbalance(tl) == pytest.approx(1.0, abs=0.01)


class TestWaitTimes:
    def test_late_sender_attributed(self):
        """Rank 1 waits ~1 s for rank 0's late message."""
        def main(comm):
            if comm.rank == 0:
                comm.advance(1.0)
                comm.send("late", 1, tag=1)
            else:
                comm.recv(source=0, tag=1)

        tl = traced(main)
        waits = total_wait_by_rank(tl)
        assert waits.get(1, 0.0) == pytest.approx(1.0, abs=0.05)
        assert waits.get(0, 0.0) == pytest.approx(0.0, abs=0.01)

    def test_no_wait_when_sender_early(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("early", 1, tag=1)
            else:
                comm.advance(1.0)
                comm.recv(source=0, tag=1)

        tl = traced(main)
        recs = [w for w in wait_times(tl) if w.rank == 1]
        assert all(w.wait < 0.01 for w in recs)

    def test_wait_record_fields(self):
        def main(comm):
            if comm.rank == 0:
                comm.advance(0.5)
                comm.send(b"x", 1, tag=7)
            else:
                comm.recv(source=0, tag=7)

        tl = traced(main)
        rec = [w for w in wait_times(tl) if w.rank == 1][0]
        assert rec.peer == 0
        assert rec.tag == 7


class TestTrafficProfile:
    def test_volume_binned(self):
        def main(comm):
            if comm.rank == 0:
                for _ in range(3):
                    comm.advance(0.1)
                    comm.Send(np.zeros(1000), 1)
            else:
                buf = np.empty(1000)
                for _ in range(3):
                    comm.Recv(buf, source=0)

        tl = traced(main)
        edges, volumes = traffic_profile(tl, n_bins=10)
        assert len(edges) == 11
        assert volumes.sum() >= 3 * 8000

    def test_empty_profile(self):
        edges, volumes = traffic_profile(Timeline([]), n_bins=5)
        assert volumes.sum() == 0

    def test_burstiness_visible(self):
        """One big burst lands in few bins (the paper's 'short bursts')."""
        def main(comm):
            if comm.rank == 0:
                comm.advance(1.0)
                comm.Send(np.zeros(50_000), 1)
            else:
                buf = np.empty(50_000)
                comm.Recv(buf, source=0)
                comm.advance(1.0)

        tl = traced(main)
        _, volumes = traffic_profile(tl, n_bins=10)
        assert (volumes > 0).sum() <= 2


class TestSummary:
    def test_summarize_text(self):
        def main(comm):
            comm.advance(0.3)
            comm.barrier()

        tl = traced(main, layout=((CRAY_T3E_600, 2), (IBM_SP2, 1)))
        text = summarize(tl)
        assert "rank" in text
        assert "load imbalance" in text
        assert text.count("\n") >= 4
