"""Tests for units, image writers, and running statistics."""


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    KBYTE,
    MBYTE,
    RunningStats,
    pretty_rate,
    pretty_size,
    pretty_time,
    write_pgm,
    write_ppm,
)
from repro.util.images import read_pnm
from repro.util.units import (
    bits_to_bytes,
    bytes_to_bits,
    gbit_per_s,
    mbit_per_s,
    mbyte_per_s,
    rate_in_mbit,
    rate_in_mbyte,
)


class TestUnits:
    def test_kbyte_is_binary(self):
        assert KBYTE == 1024
        assert MBYTE == 1024 * 1024

    def test_bits_bytes_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(123.0)) == 123.0

    def test_mbit_per_s_decimal(self):
        assert mbit_per_s(622.08) == 622.08e6

    def test_gbit_per_s(self):
        assert gbit_per_s(2.4) == 2.4e9

    def test_mbyte_per_s_binary(self):
        assert mbyte_per_s(30) == 30 * 1024 * 1024 * 8

    def test_rate_roundtrips(self):
        assert rate_in_mbit(mbit_per_s(155.52)) == pytest.approx(155.52)
        assert rate_in_mbyte(mbyte_per_s(30.0)) == pytest.approx(30.0)

    def test_pretty_rate(self):
        assert pretty_rate(622.08e6) == "622.08 Mbit/s"
        assert pretty_rate(2.4e9) == "2.40 Gbit/s"
        assert pretty_rate(9600) == "9.60 kbit/s"
        assert pretty_rate(100) == "100 bit/s"

    def test_pretty_size(self):
        assert pretty_size(64 * KBYTE) == "64.0 KByte"
        assert pretty_size(30 * MBYTE) == "30.00 MByte"
        assert pretty_size(100) == "100 Byte"

    def test_pretty_time(self):
        assert pretty_time(1.1) == "1.10 s"
        assert pretty_time(0.0021) == "2.10 ms"
        assert pretty_time(5e-6) == "5 µs"
        assert pretty_time(5e-9) == "5 ns"


class TestImages:
    def test_pgm_roundtrip(self, tmp_path):
        img = (np.arange(12, dtype=np.uint8) * 20).reshape(3, 4)
        path = tmp_path / "t.pgm"
        write_pgm(path, img)
        back = read_pnm(path)
        np.testing.assert_array_equal(back, img)

    def test_ppm_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 255, size=(5, 7, 3), dtype=np.uint8)
        path = tmp_path / "t.ppm"
        write_ppm(path, img)
        back = read_pnm(path)
        np.testing.assert_array_equal(back, img)

    def test_float_images_scaled_from_unit_interval(self, tmp_path):
        img = np.array([[0.0, 0.5, 1.0]])
        path = tmp_path / "f.pgm"
        write_pgm(path, img)
        back = read_pnm(path)
        np.testing.assert_array_equal(back, [[0, 127, 255]])

    def test_float_values_clipped(self, tmp_path):
        img = np.array([[-1.0, 2.0]])
        path = tmp_path / "c.pgm"
        write_pgm(path, img)
        back = read_pnm(path)
        np.testing.assert_array_equal(back, [[0, 255]])

    def test_pgm_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 3)))

    def test_ppm_rejects_2d(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2)))


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_sample(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.stddev == 0.0
        assert s.min == s.max == 5.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        xs = rng.normal(10, 3, size=500)
        s = RunningStats()
        for x in xs:
            s.add(float(x))
        assert s.mean == pytest.approx(np.mean(xs))
        assert s.variance == pytest.approx(np.var(xs, ddof=1))
        assert s.min == pytest.approx(xs.min())
        assert s.max == pytest.approx(xs.max())
        assert s.total == pytest.approx(xs.sum())

    @given(
        xs=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50
        ),
        ys=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50
        ),
    )
    def test_merge_equals_union_property(self, xs, ys):
        """Property: merge(A, B) equals stats over concatenated samples."""
        a, b, u = RunningStats(), RunningStats(), RunningStats()
        for x in xs:
            a.add(x)
            u.add(x)
        for y in ys:
            b.add(y)
            u.add(y)
        m = a.merge(b)
        assert m.n == u.n
        assert m.mean == pytest.approx(u.mean, rel=1e-9, abs=1e-6)
        assert m.variance == pytest.approx(u.variance, rel=1e-6, abs=1e-4)
        assert m.min == u.min
        assert m.max == u.max
