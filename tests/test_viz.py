"""Tests for the visualization package: Figure 3 (2-D overlay), Figure 4
(3-D rendering) and the Responsive Workbench (E4/E5)."""

import numpy as np
import pytest

from repro.fire import HeadPhantom
from repro.netsim import build_testbed
from repro.viz import (
    WorkbenchSpec,
    hot_colormap,
    merge_functional,
    overlay_slice,
    render_frame,
    render_stereo_pair,
    resample_to,
    roi_timecourse,
    slice_mosaic,
    workbench_fps,
)
from repro.viz.colormap import cold_colormap, grayscale, normalize
from repro.viz.overlay2d import percent_signal_change
from repro.viz.render3d import mip, orbit
from repro.viz.volume import functional_fraction
from repro.viz.workbench import required_rate_for_fps, workbench_fps_over_path


class TestColormaps:
    def test_hot_endpoints(self):
        lut = hot_colormap(np.array([0.0, 1.0]))
        np.testing.assert_allclose(lut[0], [0, 0, 0])
        np.testing.assert_allclose(lut[1], [1, 1, 1])

    def test_hot_midrange_is_red_orange(self):
        rgb = hot_colormap(np.array([0.4]))[0]
        assert rgb[0] > rgb[1] > rgb[2]

    def test_cold_is_blue_leaning(self):
        rgb = cold_colormap(np.array([0.4]))[0]
        assert rgb[2] > rgb[1] >= rgb[0]

    def test_grayscale_shape(self):
        out = grayscale(np.zeros((4, 5)))
        assert out.shape == (4, 5, 3)

    def test_normalize_range(self):
        v = normalize(np.array([[-5.0, 0.0, 100.0]]))
        assert v.min() == 0.0 and v.max() <= 1.0

    def test_normalize_constant(self):
        np.testing.assert_array_equal(normalize(np.full((3, 3), 7.0)), 0.0)


class TestOverlay2d:
    @pytest.fixture(scope="class")
    def data(self):
        ph = HeadPhantom()
        anat = ph.anatomy()
        corr = np.zeros(ph.shape)
        corr[ph.activation_mask()] = 0.8
        return ph, anat, corr

    def test_overlay_colors_only_above_clip(self, data):
        ph, anat, corr = data
        sl = 8
        img = overlay_slice(anat[sl], corr[sl], clip_level=0.5)
        act = ph.activation_mask()[sl]
        # activated pixels are colored (R > B), others gray (R == B)
        assert np.all(img[act][:, 0] > img[act][:, 2])
        quiet = ~act
        np.testing.assert_allclose(img[quiet][:, 0], img[quiet][:, 2])

    def test_clip_level_hides_weak_activation(self, data):
        ph, anat, corr = data
        img = overlay_slice(anat[8], corr[8], clip_level=0.9)
        act = ph.activation_mask()[8]
        np.testing.assert_allclose(img[act][:, 0], img[act][:, 2])  # gray

    def test_negative_overlay_optional(self, data):
        ph, anat, corr = data
        img_off = overlay_slice(anat[8], -corr[8], clip_level=0.5)
        img_on = overlay_slice(
            anat[8], -corr[8], clip_level=0.5, show_negative=True
        )
        act = ph.activation_mask()[8]
        np.testing.assert_allclose(img_off[act][:, 0], img_off[act][:, 2])
        assert np.all(img_on[act][:, 2] > img_on[act][:, 0])

    def test_invalid_clip(self, data):
        _, anat, corr = data
        with pytest.raises(ValueError):
            overlay_slice(anat[0], corr[0], clip_level=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            overlay_slice(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_mosaic_geometry(self, data):
        _, anat, corr = data
        mosaic = slice_mosaic(anat, corr, columns=4)
        assert mosaic.shape == (4 * 64, 4 * 64, 3)

    def test_roi_timecourse(self, data):
        ph, _, _ = data
        ts = np.arange(10)[:, None, None, None] * np.ones((1, *ph.shape))
        tc = roi_timecourse(ts, ph.activation_mask())
        np.testing.assert_allclose(tc, np.arange(10))

    def test_roi_empty_rejected(self, data):
        ph, _, _ = data
        with pytest.raises(ValueError):
            roi_timecourse(np.zeros((5, *ph.shape)), np.zeros(ph.shape, bool))

    def test_percent_signal_change(self):
        tc = np.array([100.0, 102.0, 98.0])
        np.testing.assert_allclose(
            percent_signal_change(tc), [0.0, 2.0, -2.0]
        )


class TestVolume:
    def test_resample_shapes(self):
        vol = np.random.default_rng(0).normal(size=(8, 16, 16))
        out = resample_to(vol, (16, 32, 32))
        assert out.shape == (16, 32, 32)

    def test_resample_preserves_values_roughly(self):
        vol = np.full((4, 4, 4), 3.5)
        out = resample_to(vol, (8, 8, 8))
        np.testing.assert_allclose(out, 3.5, atol=1e-9)

    def test_resample_rejects_2d(self):
        with pytest.raises(ValueError):
            resample_to(np.zeros((4, 4)), (8, 8, 8))

    def test_merge_clips_below_level(self):
        ph = HeadPhantom()
        hr = ph.highres_anatomy((32, 64, 64))
        corr = np.zeros(ph.shape)
        corr[ph.activation_mask()] = 0.7
        _, func = merge_functional(hr, corr, clip_level=0.5)
        assert func.shape == hr.shape
        assert func.max() <= 0.7 + 1e-9
        assert set(np.unique(func >= 0.5)) <= {False, True}
        assert 0 < functional_fraction(func) < 0.2


class TestRender3d:
    @pytest.fixture(scope="class")
    def volumes(self):
        ph = HeadPhantom()
        hr = ph.highres_anatomy((24, 48, 48))
        corr = np.zeros(ph.shape)
        corr[ph.activation_mask()] = 0.9
        return merge_functional(hr, corr, clip_level=0.5)

    def test_mip(self):
        vol = np.zeros((3, 3, 3))
        vol[1, 2, 0] = 5.0
        assert mip(vol, axis=0).max() == 5.0

    def test_render_shape_and_range(self, volumes):
        anat, func = volumes
        img = render_frame(anat, func)
        assert img.ndim == 3 and img.shape[2] == 3
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_functional_highlights_visible(self, volumes):
        """Figure 4's 'light areas': activated regions colored."""
        anat, func = volumes
        plain = render_frame(anat, None)
        lit = render_frame(anat, func)
        # color difference: red channel exceeds blue somewhere
        assert np.any(lit[..., 0] - lit[..., 2] > 0.2)
        np.testing.assert_allclose(plain[..., 0], plain[..., 2])

    def test_rotation_changes_view(self, volumes):
        anat, _ = volumes
        a = render_frame(anat, None, azimuth_deg=0)
        b = render_frame(anat, None, azimuth_deg=45)
        assert np.abs(a - b).mean() > 1e-3

    def test_output_shape_resize(self, volumes):
        anat, func = volumes
        img = render_frame(anat, func, output_shape=(96, 128))
        assert img.shape == (96, 128, 3)

    def test_stereo_pair_differs(self, volumes):
        anat, func = volumes
        left, right = render_stereo_pair(anat, func, eye_separation_deg=6.0)
        assert left.shape == right.shape
        assert np.abs(left - right).mean() > 1e-4

    def test_grid_mismatch_rejected(self, volumes):
        anat, _ = volumes
        with pytest.raises(ValueError):
            render_frame(anat, np.zeros((2, 2, 2)))

    def test_orbit_frames(self, volumes):
        anat, func = volumes
        frames = orbit(anat, func, n_frames=4, output_shape=(32, 32))
        assert len(frames) == 4


class TestWorkbench:
    def test_frame_geometry(self):
        spec = WorkbenchSpec()
        assert spec.images_per_frame == 4  # 2 planes x stereo
        assert spec.frame_bytes == 4 * 1024 * 768 * 3  # 9 MByte

    def test_paper_fps_bound(self):
        """E5: 'less than 8 frames/second ... over a 622 Mbit/s ATM
        network using classical IP'."""
        fps = workbench_fps()
        assert 6.5 < fps < 8.0

    def test_raw_link_would_clear_8fps(self):
        """Without the protocol overhead the raw 622.08 line would just
        exceed 8 fps — the overhead is what pushes it under."""
        spec = WorkbenchSpec()
        assert 622.08e6 / spec.frame_bits > 8.0

    def test_fps_over_testbed_path(self):
        tb = build_testbed()
        fps = workbench_fps_over_path(tb.net, "onyx2-gmd", "onyx2-juelich")
        assert 6.5 < fps < 8.0

    def test_mono_single_plane_is_4x_cheaper(self):
        full = WorkbenchSpec()
        mono = WorkbenchSpec(planes=1, stereo=False)
        assert full.frame_bytes == 4 * mono.frame_bytes

    def test_required_rate_inverse(self):
        spec = WorkbenchSpec()
        rate = required_rate_for_fps(25.0, spec)
        assert rate == pytest.approx(25.0 * spec.frame_bits)

    def test_required_rate_validates(self):
        with pytest.raises(ValueError):
            required_rate_for_fps(0.0)
