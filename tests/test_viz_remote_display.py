"""Tests for the rendering-platform model and the AVOCADO remote display
pipeline (Section 4's AVS-prototype and planned-extension claims)."""

import pytest

from repro.netsim import build_testbed
from repro.viz.remote_display import (
    GRAPHICS_WORKSTATION,
    INTERACTIVE_FPS,
    MERGED_VOLUME,
    ONYX2_PIPE,
    RenderPlatform,
    remote_display_fps,
)
from repro.viz.workbench import WorkbenchSpec


class TestRenderPlatforms:
    def test_workstation_updates_but_is_not_interactive(self):
        """Paper: the AVS workstation prototype updates in seconds (fine
        for the 2-D-GUI cadence) but is 'too slow for interactive
        manipulations'."""
        t_update = GRAPHICS_WORKSTATION.render_time(MERGED_VOLUME)
        assert 0.1 < t_update < 2.0  # comparable to the 0.6 s display step
        assert not GRAPHICS_WORKSTATION.interactive(MERGED_VOLUME)

    def test_onyx2_is_interactive(self):
        """The 12-processor Onyx 2 exists precisely because VR needs
        interactive rates on the merged volume."""
        assert ONYX2_PIPE.interactive(MERGED_VOLUME)
        assert ONYX2_PIPE.fps(MERGED_VOLUME) > INTERACTIVE_FPS

    def test_views_scale_cost(self):
        t1 = ONYX2_PIPE.render_time(MERGED_VOLUME, views=1)
        t4 = ONYX2_PIPE.render_time(MERGED_VOLUME, views=4)
        assert t4 == pytest.approx(4 * t1)

    def test_pipes_scale_rate(self):
        single = RenderPlatform("one-pipe", 120.0, pipes=1)
        double = RenderPlatform("two-pipe", 120.0, pipes=2)
        assert double.fps(MERGED_VOLUME) == pytest.approx(
            2 * single.fps(MERGED_VOLUME)
        )


class TestRemoteDisplay:
    @pytest.fixture(scope="class")
    def tb(self):
        return build_testbed()

    def test_pipeline_is_network_bound(self, tb):
        """The whole point of the in-text bandwidth computation: the
        Onyx 2 can render faster than 622 Mbit/s classical IP can ship."""
        report = remote_display_fps(tb.net)
        assert report.network_bound
        assert report.achieved_fps == pytest.approx(report.network_fps)

    def test_achieved_under_8_fps(self, tb):
        report = remote_display_fps(tb.net)
        assert report.achieved_fps < 8.0
        assert report.achieved_fps > 6.0

    def test_mono_single_plane_reaches_interactive(self, tb):
        """Shrinking the frame set (1 plane, mono) quadruples the network
        rate — enough for borderline interactivity."""
        spec = WorkbenchSpec(planes=1, stereo=False)
        report = remote_display_fps(tb.net, spec=spec)
        assert report.achieved_fps > 3.5 * remote_display_fps(tb.net).achieved_fps

    def test_workstation_renderer_would_be_render_bound(self, tb):
        report = remote_display_fps(tb.net, platform=GRAPHICS_WORKSTATION)
        assert not report.network_bound
        assert report.achieved_fps < 1.0
